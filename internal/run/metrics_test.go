package run

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
)

func counterValue(r *obs.Registry, name, workload string) int64 {
	return r.Counter(name, obs.Labels{"workload": workload}).Value()
}

func TestRunnerMetricsExecutionsAndCacheHits(t *testing.T) {
	r := NewRunner(0)
	ctx := context.Background()
	m := r.Metrics()

	if _, err := r.Run(ctx, hookSpec(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, hookSpec(100)); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, hookSpec(200)); err != nil { // second execution
		t.Fatal(err)
	}
	if got := counterValue(m, MetricExecutions, "run-hook"); got != 2 {
		t.Errorf("%s = %d, want 2", MetricExecutions, got)
	}
	if got := counterValue(m, MetricCacheHits, "run-hook"); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCacheHits, got)
	}
	// The counter form always agrees with the method form.
	if got := r.Executions(); got != 2 {
		t.Errorf("Executions() = %d, want 2", got)
	}
	// Execution latency histogram observed both engine runs.
	h := m.Histogram(MetricExecSeconds, obs.Labels{"workload": "run-hook"}, obs.DefLatencyBuckets)
	if h.Count() != 2 {
		t.Errorf("%s count = %d, want 2", MetricExecSeconds, h.Count())
	}
	if h.Quantile(0.99) <= 0 {
		t.Errorf("%s p99 = %v, want > 0", MetricExecSeconds, h.Quantile(0.99))
	}
	// Execute bypasses the record cache but still counts as an execution.
	if _, err := r.Execute(ctx, hookSpec(100)); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(m, MetricExecutions, "run-hook"); got != 3 {
		t.Errorf("%s after Execute = %d, want 3", MetricExecutions, got)
	}
}

func TestRunnerMetricsStoreHitsAndErrors(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ds, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First runner computes and persists.
	r1 := NewRunner(0)
	r1.SetStore(ds)
	if _, err := r1.Run(ctx, hookSpec(300)); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(r1.Metrics(), MetricStoreHits, "run-hook"); got != 0 {
		t.Errorf("fresh store reported %d hits", got)
	}

	// Second runner (a "restart") answers from the store: a store hit, no
	// execution.
	r2 := NewRunner(0)
	r2.SetStore(ds)
	if _, err := r2.Run(ctx, hookSpec(300)); err != nil {
		t.Fatal(err)
	}
	m2 := r2.Metrics()
	if got := counterValue(m2, MetricStoreHits, "run-hook"); got != 1 {
		t.Errorf("%s = %d, want 1", MetricStoreHits, got)
	}
	if got := counterValue(m2, MetricExecutions, "run-hook"); got != 0 {
		t.Errorf("%s = %d, want 0 (store-served)", MetricExecutions, got)
	}

	// A runner whose store cannot persist counts the failures in both the
	// method and the metric, and the run still succeeds.
	r3 := NewRunner(0)
	r3.SetStore(failingStore{})
	if _, err := r3.Run(ctx, hookSpec(400)); err != nil {
		t.Fatalf("save failure must not fail the run: %v", err)
	}
	if got := counterValue(r3.Metrics(), MetricStoreErrors, "run-hook"); got != 1 {
		t.Errorf("%s = %d, want 1", MetricStoreErrors, got)
	}
	if r3.StoreErrors() != 1 {
		t.Errorf("StoreErrors() = %d, want 1", r3.StoreErrors())
	}
}

func TestRunnerMetricsSingleFlightWait(t *testing.T) {
	r := NewRunner(0)
	ctx := context.Background()
	// All-identical specs through RunAll: one execution, the rest collapse
	// and wait on it.
	const n = 8
	release := make(chan struct{})
	setHook(func() { <-release })
	defer setHook(nil)
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = hookSpec(500)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.RunAll(ctx, specs)
		done <- err
	}()
	// Let the losers pile up behind the winner, then release it.
	waitHist := r.Metrics().Histogram(MetricWaitSeconds, obs.Labels{"workload": "run-hook"}, obs.DefLatencyBuckets)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if got := counterValue(m, MetricExecutions, "run-hook"); got != 1 {
		t.Errorf("%s = %d, want 1 (single-flight)", MetricExecutions, got)
	}
	hits := counterValue(m, MetricCacheHits, "run-hook")
	if hits != n-1 {
		t.Errorf("%s = %d, want %d (losers + repeats)", MetricCacheHits, hits, n-1)
	}
	// Collapsed callers observed their wait; done-map hits (wait 0) are not
	// observed, so the count is at most the loser count.
	if waitHist.Count() > n-1 {
		t.Errorf("%s count = %d, want <= %d", MetricWaitSeconds, waitHist.Count(), n-1)
	}
}

func TestRunnerMetricsPrometheusNames(t *testing.T) {
	// The CI smoke job greps these exact family names from GET /metrics;
	// this pins them at the source.
	r := NewRunner(0)
	if _, err := r.Run(context.Background(), hookSpec(600)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.Metrics().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`run_executions_total{workload="run-hook"} 1`,
		`run_exec_seconds_bucket{workload="run-hook",le="+Inf"} 1`,
		`run_exec_seconds_count{workload="run-hook"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
