package run

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func storeSpec(work int) Spec {
	s := hookSpec(work)
	s.Validate = true
	return s
}

func TestDiskStoreRoundTrip(t *testing.T) {
	st, err := NewDiskStore(filepath.Join(t.TempDir(), "records"))
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		Spec:         Spec{Workload: "run-hook", Variant: "sequential", Platform: "alpha", Procs: 1, Scale: 1},
		Key:          "run-hook|sequential|alpha|p1|s1|work=100",
		ModelSeconds: 1.5, PaperSeconds: 1.5, Checksum: Checksum(0xdeadbeefcafef00d),
	}
	if _, ok := st.Load(rec.Key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Load(rec.Key)
	if !ok {
		t.Fatal("saved record not loadable")
	}
	if got.Key != rec.Key || got.ModelSeconds != rec.ModelSeconds || got.Checksum != rec.Checksum {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	// Overwrite is allowed and keeps one file per key.
	rec.ModelSeconds = 2.5
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Load(rec.Key); got.ModelSeconds != 2.5 {
		t.Errorf("overwrite not visible: %+v", got)
	}
	if st.Len() != 1 {
		t.Errorf("Len after overwrite = %d, want 1", st.Len())
	}
	if err := st.Save(Record{}); err == nil {
		t.Error("record without a key accepted")
	}
}

func TestDiskStoreCorruptionIsAMiss(t *testing.T) {
	st, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Key: "some|key", ModelSeconds: 1}
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	path := st.path(rec.Key)
	for name, garble := range map[string][]byte{
		"truncated":     []byte(`{"key": "some|key", "model_`),
		"not json":      []byte("!! not a record !!"),
		"empty":         {},
		"wrong key":     []byte(`{"key": "other|key", "model_seconds": 1}`),
		"bad checksum":  []byte(`{"key": "some|key", "checksum": "+eadbeefcafef00d"}`),
		"json but null": []byte("null"),
	} {
		if err := os.WriteFile(path, garble, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Load(rec.Key); ok {
			t.Errorf("%s: corrupted entry served as a hit", name)
		}
	}
	// A good record written over the corruption is served again.
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load(rec.Key); !ok {
		t.Error("recovered entry not served")
	}
}

func TestRunnerStoreLayering(t *testing.T) {
	setHook(nil)
	dir := t.TempDir()
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// First process: computes and persists.
	r1 := NewRunner(0)
	r1.SetStore(st)
	rec1, err := r1.Run(ctx, storeSpec(400))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Executions() != 1 {
		t.Fatalf("executions = %d, want 1", r1.Executions())
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records after one run, want 1", st.Len())
	}

	// "Second process" (a fresh Runner on the same store): served from disk,
	// no engine execution, identical record including the original host cost.
	r2 := NewRunner(0)
	r2.SetStore(st)
	rec2, err := r2.Run(ctx, storeSpec(400))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Executions() != 0 {
		t.Errorf("store-served run executed the engine %d times", r2.Executions())
	}
	if rec2.Key != rec1.Key || rec2.ModelSeconds != rec1.ModelSeconds ||
		rec2.Checksum != rec1.Checksum || rec2.HostElapsed != rec1.HostElapsed {
		t.Errorf("store round trip diverged:\n  %+v\n  %+v", rec1, rec2)
	}

	// Corrupt the entry: a third process recomputes instead of crashing, and
	// heals the store.
	var files []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) != 1 {
		t.Fatalf("store layout: %d record files, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(0)
	r3.SetStore(st)
	rec3, err := r3.Run(ctx, storeSpec(400))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Executions() != 1 {
		t.Errorf("corrupted entry did not trigger recompute: %d executions", r3.Executions())
	}
	if rec3.ModelSeconds != rec1.ModelSeconds || rec3.Checksum != rec1.Checksum {
		t.Errorf("recomputed record diverged: %+v vs %+v", rec3, rec1)
	}
	if _, ok := st.Load(rec1.Key); !ok {
		t.Error("recompute did not heal the corrupted store entry")
	}

	// Execute (the benchmark path) bypasses the store entirely in both
	// directions.
	execs := r3.Executions()
	if _, err := r3.Execute(ctx, storeSpec(400)); err != nil {
		t.Fatal(err)
	}
	if r3.Executions() != execs+1 {
		t.Error("Execute consulted the store")
	}
}

// failingStore returns errors from Save — the Runner must still answer.
type failingStore struct{}

func (failingStore) Load(string) (Record, bool) { return Record{}, false }
func (failingStore) Save(Record) error          { return os.ErrPermission }

func TestRunnerStoreSaveFailureIsNonFatal(t *testing.T) {
	setHook(nil)
	r := NewRunner(0)
	r.SetStore(failingStore{})
	rec, err := r.Run(context.Background(), storeSpec(500))
	if err != nil {
		t.Fatalf("run failed because the store could not persist: %v", err)
	}
	if rec.ModelSeconds <= 0 {
		t.Errorf("record empty: %+v", rec)
	}
	if r.StoreErrors() != 1 {
		t.Errorf("StoreErrors = %d, want 1", r.StoreErrors())
	}
}

func TestRunAllEmpty(t *testing.T) {
	r := NewRunner(4)
	recs, err := r.RunAll(context.Background(), nil)
	if err != nil || len(recs) != 0 {
		t.Errorf("empty RunAll = %v, %v", recs, err)
	}
	recs, err = r.RunAll(context.Background(), []Spec{})
	if err != nil || len(recs) != 0 {
		t.Errorf("empty-slice RunAll = %v, %v", recs, err)
	}
	if r.Executions() != 0 {
		t.Errorf("empty RunAll executed something: %d", r.Executions())
	}
}
