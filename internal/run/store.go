package run

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is a persistent Record cache keyed by the canonical Spec key.
// Layered under a Runner's in-memory single-flight cache (SetStore), it lets
// Records outlive the process: a serving layer restarted against the same
// store answers previously computed Specs without touching an engine.
type Store interface {
	// Load returns the stored Record for a canonical Spec key. A missing,
	// unreadable or corrupted entry reports ok == false — persistence
	// problems degrade to recomputation, never to request failure.
	Load(key string) (rec Record, ok bool)
	// Save persists a freshly computed Record under its Key.
	Save(rec Record) error
}

// DiskStore is a Store backed by one JSON file per Record under a single
// directory: <dir>/<sha256(key) hex>.json, holding exactly the Record JSON
// that travels over the wire. Keys are hashed because canonical Spec keys
// contain separators ("|", "/", "=") that are not filename-safe; the Record
// inside carries its own Key, which Load verifies, so a foreign or stale
// file can never satisfy the wrong Spec. Writes go to a temp file in the
// same directory and rename into place, so a reader (or a crash mid-write)
// never observes a partial record — and a truncated or hand-garbled entry is
// simply treated as a miss and recomputed, never a failure.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) a record store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("run: record store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// path maps a canonical Spec key to its record file.
func (d *DiskStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// Load implements Store. Every failure mode — no file, unreadable file,
// invalid JSON (including a non-canonical checksum, which Record's decoder
// rejects), or a record whose embedded Key disagrees with the requested one
// — is a miss, so corruption costs a recomputation, not an outage.
func (d *DiskStore) Load(key string) (Record, bool) {
	buf, err := os.ReadFile(d.path(key))
	if err != nil {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(buf, &rec); err != nil {
		return Record{}, false
	}
	if rec.Key != key {
		return Record{}, false
	}
	return rec, true
}

// Save implements Store: marshal, write to a temp file in the store
// directory, fsync-free rename into place (rename within one directory is
// atomic on POSIX, so concurrent writers of the same key race benignly —
// both files hold the same deterministic record).
func (d *DiskStore) Save(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("run: record store: refusing to save a record without a key")
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("run: record store: %w", err)
	}
	tmp, err := os.CreateTemp(d.dir, ".rec-*.tmp")
	if err != nil {
		return fmt.Errorf("run: record store: %w", err)
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("run: record store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("run: record store: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(rec.Key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("run: record store: %w", err)
	}
	return nil
}

// Len counts the records currently on disk (health and ops reporting;
// leftover temp files are not records and are not counted).
func (d *DiskStore) Len() int {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
