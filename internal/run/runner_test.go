package run

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/c3i/suite"
	"repro/internal/machine"
)

// The hook workload gives the Runner tests a cheap, controllable variant:
// its Run body calls the test-installed hook, so tests can observe and steer
// executions (e.g. cancel a context mid-sweep) deterministically. It is
// registered only in this test process.
var (
	hookMu  sync.Mutex
	hook    func()
	genHook func()
)

func setHook(f func()) {
	hookMu.Lock()
	hook = f
	hookMu.Unlock()
}

func setGenHook(f func()) {
	hookMu.Lock()
	genHook = f
	hookMu.Unlock()
}

func callHook() {
	hookMu.Lock()
	f := hook
	hookMu.Unlock()
	if f != nil {
		f()
	}
}

func callGenHook() {
	hookMu.Lock()
	f := genHook
	hookMu.Unlock()
	if f != nil {
		f()
	}
}

type hookScenario struct{}

func (hookScenario) ScenarioName() string { return "hook-1" }
func (hookScenario) Units() int           { return 1 }
func (hookScenario) Warm()                {}

func init() {
	suite.MustRegister(&suite.Workload{
		Name: "run-hook", Key: "rh", FileTag: "rh", Title: "Runner Test Hook",
		Order: 99, PaperUnits: 1, UnitName: "units/scenario",
		DefaultScale: 1, DataScale: 1, SmallScale: 1,
		Generate: func(scale float64) []suite.Scenario {
			callGenHook()
			return []suite.Scenario{hookScenario{}}
		},
		Variants: []*suite.Variant{{
			Name: "sequential", Style: suite.Sequential,
			Defaults: suite.Params{"work": 100},
			Run: func(t *machine.Thread, sc suite.Scenario, p suite.Params) suite.Output {
				callHook()
				t.Compute(int64(p["work"]))
				if p[suite.ValidateParam] != 0 {
					return suite.Output{Checksum: 42, OverheadBytes: 64}
				}
				return suite.Output{}
			},
		}},
	})
}

func hookSpec(work int) Spec {
	return Spec{Workload: "run-hook", Variant: "sequential", Platform: "alpha", Procs: 1,
		Params: suite.Params{"work": work}}
}

func TestRunnerSingleFlightUnderConcurrentRunAll(t *testing.T) {
	setHook(nil)
	r := NewRunner(8)
	specs := make([]Spec, 16)
	for i := range specs {
		specs[i] = hookSpec(500) // all identical after normalization
	}
	recs, err := r.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Executions(); got != 1 {
		t.Errorf("16 identical concurrent specs executed %d times, want 1 (single-flight)", got)
	}
	for i, rec := range recs {
		if rec.ModelSeconds != recs[0].ModelSeconds || rec.Key != recs[0].Key {
			t.Errorf("record %d diverged from the single execution: %+v", i, rec)
		}
	}
	// A repeat sweep is served wholly from cache.
	if _, err := r.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if got := r.Executions(); got != 1 {
		t.Errorf("cached sweep re-executed: %d executions", got)
	}
}

func TestRunnerRunAllPositionalAndDistinct(t *testing.T) {
	setHook(nil)
	r := NewRunner(4)
	specs := []Spec{hookSpec(100), hookSpec(200), hookSpec(400), hookSpec(100)}
	recs, err := r.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Executions(); got != 3 {
		t.Errorf("3 distinct specs executed %d times", got)
	}
	if !(recs[0].ModelSeconds < recs[1].ModelSeconds && recs[1].ModelSeconds < recs[2].ModelSeconds) {
		t.Errorf("model seconds not increasing with work: %g %g %g",
			recs[0].ModelSeconds, recs[1].ModelSeconds, recs[2].ModelSeconds)
	}
	if recs[3].Key != recs[0].Key || recs[3].ModelSeconds != recs[0].ModelSeconds ||
		recs[3].HostElapsed != recs[0].HostElapsed {
		t.Error("duplicate spec at index 3 did not reuse index 0's record")
	}
}

func TestRunnerContextCancellationMidSweep(t *testing.T) {
	r := NewRunner(1) // serial, so cancellation lands between specs deterministically
	ctx, cancel := context.WithCancel(context.Background())
	var executions atomic.Int32
	setHook(func() {
		if executions.Add(1) == 3 {
			cancel() // cancel while the third spec's engine is running
		}
	})
	defer setHook(nil)
	specs := make([]Spec, 6)
	for i := range specs {
		specs[i] = hookSpec(1000 + i) // distinct, so each requires an execution
	}
	recs, err := r.RunAll(ctx, specs)
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	// The in-flight spec completes (the simulation is not preemptible);
	// everything after it fails fast without executing.
	if got := r.Executions(); got != 3 {
		t.Errorf("executions after cancel = %d, want 3", got)
	}
	for i, rec := range recs {
		if i < 3 && rec.ModelSeconds <= 0 {
			t.Errorf("pre-cancel record %d empty: %+v", i, rec)
		}
		if i >= 3 && rec.ModelSeconds != 0 {
			t.Errorf("post-cancel record %d executed: %+v", i, rec)
		}
	}
}

func TestRunnerWaiterSurvivesWinnerCancellation(t *testing.T) {
	// A single-flight winner whose context dies during suite generation
	// must not poison callers with live contexts that collapsed onto it:
	// they retry and complete.
	setHook(nil)
	r := NewRunner(4)
	ctxA, cancelA := context.WithCancel(context.Background())
	genStarted := make(chan struct{})
	release := make(chan struct{})
	var genOnce sync.Once
	setGenHook(func() {
		genOnce.Do(func() {
			close(genStarted)
			<-release
		})
	})
	defer setGenHook(nil)

	spec := hookSpec(700)
	aErr := make(chan error, 1)
	go func() {
		_, err := r.Run(ctxA, spec)
		aErr <- err
	}()
	<-genStarted // A is the winner, blocked inside Generate

	bDone := make(chan error, 1)
	go func() {
		_, err := r.Run(context.Background(), spec)
		bDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let B park on A's in-flight call
	cancelA()
	close(release)

	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled winner returned %v, want context.Canceled", err)
	}
	if err := <-bDone; err != nil {
		t.Errorf("live-context waiter inherited the winner's cancellation: %v", err)
	}
	if got := r.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1 (the winner never reached the engine; the waiter's retry did)", got)
	}
}

func TestRunnerRunPreCancelled(t *testing.T) {
	setHook(nil)
	r := NewRunner(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx, hookSpec(100)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Run returned %v", err)
	}
	if r.Executions() != 0 {
		t.Error("pre-cancelled Run executed anyway")
	}
}

func TestRunnerExecuteBypassesCache(t *testing.T) {
	setHook(nil)
	r := NewRunner(0)
	ctx := context.Background()
	a, err := r.Execute(ctx, hookSpec(300))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Execute(ctx, hookSpec(300))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Executions(); got != 2 {
		t.Errorf("Execute consulted the cache: %d executions, want 2", got)
	}
	if a.ModelSeconds != b.ModelSeconds {
		t.Errorf("repeated executions diverge: %g vs %g (simulation must be deterministic)", a.ModelSeconds, b.ModelSeconds)
	}
}

func TestRunnerValidateChecksum(t *testing.T) {
	setHook(nil)
	r := NewRunner(0)
	ctx := context.Background()
	chargeOnly, err := r.Run(ctx, hookSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	if chargeOnly.Checksum != 0 {
		t.Errorf("charge-only run has checksum %x", uint64(chargeOnly.Checksum))
	}
	v := hookSpec(100)
	v.Validate = true
	validated, err := r.Run(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if validated.Checksum != 42 || validated.OverheadBytes != 64 {
		t.Errorf("validated run = checksum %x overhead %d, want 42/64",
			uint64(validated.Checksum), validated.OverheadBytes)
	}
	if validated.Key == chargeOnly.Key {
		t.Error("validate flag not part of the key")
	}
}

func TestRunnerRunScenario(t *testing.T) {
	setHook(nil)
	r := NewRunner(0)
	spec := hookSpec(100)
	spec.Validate = true
	rec, err := r.RunScenario(context.Background(), spec, hookScenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checksum != 42 {
		t.Errorf("RunScenario checksum %x, want the scenario's own 42", uint64(rec.Checksum))
	}
	if r.Executions() != 1 {
		t.Errorf("executions = %d", r.Executions())
	}
	// Scenario runs are never cached: identity is not in the key.
	if _, err := r.RunScenario(context.Background(), spec, hookScenario{}); err != nil {
		t.Fatal(err)
	}
	if r.Executions() != 2 {
		t.Error("RunScenario result was cached")
	}
	if _, err := r.RunScenario(context.Background(), spec); err == nil {
		t.Error("RunScenario with no scenarios accepted")
	}
}

func TestRunnerReset(t *testing.T) {
	setHook(nil)
	r := NewRunner(0)
	ctx := context.Background()
	if _, err := r.Run(ctx, hookSpec(100)); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if _, err := r.Run(ctx, hookSpec(100)); err != nil {
		t.Fatal(err)
	}
	if got := r.Executions(); got != 2 {
		t.Errorf("post-reset Run served from cache: %d executions, want 2", got)
	}
}

func TestOnceMapResetBeforeFirstUse(t *testing.T) {
	// The benchmark harness calls Reset before the first cache use; a
	// fresh-then-reset onceMap must still serve misses.
	var m onceMap[int]
	m.reset()
	v, err := m.do("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("do after reset = %d, %v", v, err)
	}
	m.reset()
	calls := 0
	v, err = m.do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || calls != 1 {
		t.Errorf("reset did not drop memoized value: v=%d calls=%d err=%v", v, calls, err)
	}
}

func TestOnceMapResetDuringInflight(t *testing.T) {
	// A computation started before a reset must not repopulate the
	// post-reset cache: its result belongs to the old generation.
	var m onceMap[int]
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		m.do("k", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	m.reset()
	close(release)
	// The stale call must not satisfy or poison post-reset lookups.
	v, err := m.do("k", func() (int, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Errorf("post-reset do = %d, %v; want fresh value 2", v, err)
	}
}
