package run

import (
	"fmt"

	"repro/internal/c3i/suite"
)

// GridPoint couples one coordinate of a workload's declared scenario grid
// with the normalized Spec that runs it: the scale axis lands on
// Spec.Scale, param axes land in Spec.Params, and the net axis lands on
// Spec.NetLatencyMult. Grid Specs always validate, so every record of a
// sweep carries the output checksum the conformance contract is stated
// over.
type GridPoint struct {
	// Label is the grid's canonical point rendering ("scale=0.05,gate=24").
	Label string
	// Point is the grid coordinate, every axis resolved.
	Point suite.Point
	// Spec is the normalized run description for the point.
	Spec Spec
}

// GridSpecs expands a workload's declared grid into one normalized Spec per
// point, in the grid's canonical order (row-major over the declared axes).
// An empty variant selects the workload's reference variant; restrict, when
// non-empty, limits named axes to subsets of their declared values (see
// suite.Grid.Sub). A workload that declares no grid is an error — sweeps
// outside the declared space have no conformance coverage.
func GridSpecs(workload, variant, platform string, procs int, restrict map[string][]float64) ([]GridPoint, error) {
	w, err := suite.Lookup(workload)
	if err != nil {
		return nil, err
	}
	if w.Grid == nil {
		return nil, fmt.Errorf("run: workload %s declares no scenario grid", workload)
	}
	if variant == "" {
		variant = w.Reference
	}
	g := w.Grid
	if len(restrict) > 0 {
		if g, err = g.Sub(restrict); err != nil {
			return nil, err
		}
	}
	pts := g.Points()
	out := make([]GridPoint, 0, len(pts))
	for _, pt := range pts {
		b, err := g.Apply(pt)
		if err != nil {
			return nil, err
		}
		spec := Spec{
			Workload:       workload,
			Variant:        variant,
			Platform:       platform,
			Procs:          procs,
			Scale:          b.Scale,
			Params:         b.Params,
			Validate:       true,
			NetLatencyMult: b.NetLatencyMult,
		}
		ns, err := spec.Normalized()
		if err != nil {
			return nil, fmt.Errorf("run: grid point %s: %w", g.PointLabel(pt), err)
		}
		out = append(out, GridPoint{Label: g.PointLabel(pt), Point: pt, Spec: ns})
	}
	return out, nil
}
