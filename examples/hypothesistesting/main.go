// Hypothesis Testing end to end: a candidate-track hypothesis set scored
// against a time-ordered observation stream under a gating window, and the
// three program styles — the sequential scoring loop, the coarse persistent
// crew with private partial-score buffers and a per-hypothesis merge
// reduction, and the Tera fine-grained style with fetch-and-add observation
// claims and full/empty guards on the running scores — with checksum
// verification across every variant and machine, the private partial-score
// memory the coarse style pays for, and a sweep over the workload's declared
// scenario grid.
//
//	go run ./examples/hypothesistesting
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/c3i/hypothesis"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/run"
	"repro/internal/smp"
)

func main() {
	p := hypothesis.GenParams{Field: 512, NumHyps: 160, NumObs: 180, Steps: 8, Seed: 7}
	s := hypothesis.GenScenario("demo", p)
	fmt.Printf("field: %d×%d, %d hypotheses × %d observations over %d steps, gate radius %d, prune %d‰\n\n",
		s.Field, s.Field, len(s.Hyps), len(s.Obs), s.Steps, hypothesis.DefaultGate, hypothesis.DefaultPrune)

	runs := []struct {
		label string
		build func() *machine.Engine
		solve func(t *machine.Thread) *hypothesis.Output
	}{
		{"sequential on Alpha",
			func() *machine.Engine { return smp.New(smp.AlphaStation()) },
			func(t *machine.Thread) *hypothesis.Output { return hypothesis.Sequential(t, s) }},
		{"coarse(4 workers) on PPro(4)",
			func() *machine.Engine { return smp.New(smp.PentiumProSMP(4)) },
			func(t *machine.Thread) *hypothesis.Output { return hypothesis.Coarse(t, s, 4) }},
		{"coarse(16 workers) on Exemplar",
			func() *machine.Engine { return smp.New(smp.Exemplar(16)) },
			func(t *machine.Thread) *hypothesis.Output { return hypothesis.Coarse(t, s, 16) }},
		{"fine(128 threads) on Tera MTA(1)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(t *machine.Thread) *hypothesis.Output { return hypothesis.Fine(t, s, 128) }},
		{"fine(128 threads) on Tera MTA(2)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 2}) },
			func(t *machine.Thread) *hypothesis.Output { return hypothesis.Fine(t, s, 128) }},
	}

	var golden uint64
	for _, r := range runs {
		var out *hypothesis.Output
		e := r.build()
		res, err := e.Run(r.label, func(t *machine.Thread) { out = r.solve(t) })
		if err != nil {
			log.Fatal(err)
		}
		sum := hypothesis.Checksum(out, len(s.Hyps), len(s.Obs))
		if golden == 0 {
			golden = sum
		} else if sum != golden {
			log.Fatalf("%s: checksum %016x differs from sequential %016x", r.label, sum, golden)
		}
		fmt.Printf("%-33s %8.3f s simulated   %6d gated pairs   best %6d   %3d survivors   %.2f MB partial buffers\n",
			r.label, res.Seconds, out.Gated, out.Best, len(out.Survivors),
			float64(out.PartialBytes)/(1<<20))
	}
	fmt.Printf("\nall variants agree: checksum %016x\n", golden)

	fmt.Println("\nwhy the coarse crew cannot use the MTA's streams at full scale:")
	for _, workers := range []int{16, 128, 256} {
		need := float64(hypothesis.CoarsePartialBytesFullScale(workers)) / (1 << 30)
		fmt.Printf("  %3d workers need %5.1f GB of private partial-score buffers (machine has 2 GB)\n",
			workers, need)
	}

	// The workload also declares a scenario grid (scale × gate × prune ×
	// net). Sweep a gate/prune slice of it through the run API — exactly
	// what `c3ibench -grid hypothesis-testing` does over the full grid.
	fmt.Println("\nscenario-grid slice (fine style, one-processor MTA):")
	pts, err := run.GridSpecs("hypothesis-testing", "fine", "tera", 1, map[string][]float64{
		"scale": {0.05}, "gate": {24, 48}, "prune": {0, 500}, "net": {0},
	})
	if err != nil {
		log.Fatal(err)
	}
	runner := run.NewRunner(0)
	for _, gp := range pts {
		rec, err := runner.Execute(context.Background(), gp.Spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s %8.3f s simulated   checksum %016x\n",
			gp.Label, rec.ModelSeconds, uint64(rec.Checksum))
	}
}
