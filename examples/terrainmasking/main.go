// Terrain Masking end to end: fractal terrain, ground threats, and the
// paper's three program variants — sequential (Program 3), coarse-grained
// with block locks (Program 4) and the Tera fine-grained version — with
// output verification and the private temp-array memory the paper worries
// about.
//
//	go run ./examples/terrainmasking
package main

import (
	"fmt"
	"log"

	"repro/internal/c3i/terrain"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

func main() {
	s := terrain.GenScenario("demo", terrain.GenParams{
		Side: 600, NumThreats: 10, Radius: 75, Seed: 11,
	})
	roi := float64(terrain.ROICells(75)) / float64(600*600)
	fmt.Printf("terrain: %d×%d cells, %d threats, ROI ≈ %.1f%% of terrain each\n\n",
		s.Grid.W, s.Grid.H, len(s.Threats), roi*100)

	runs := []struct {
		label string
		build func() *machine.Engine
		solve func(t *machine.Thread) *terrain.Output
	}{
		{"sequential on Alpha",
			func() *machine.Engine { return smp.New(smp.AlphaStation()) },
			func(t *machine.Thread) *terrain.Output { return terrain.Sequential(t, s) }},
		{"coarse(4 workers) on PPro(4)",
			func() *machine.Engine { return smp.New(smp.PentiumProSMP(4)) },
			func(t *machine.Thread) *terrain.Output { return terrain.Coarse(t, s, 4, 10) }},
		{"coarse(16 workers) on Exemplar",
			func() *machine.Engine { return smp.New(smp.Exemplar(16)) },
			func(t *machine.Thread) *terrain.Output { return terrain.Coarse(t, s, 16, 10) }},
		{"fine(96 sectors) on Tera MTA(1)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(t *machine.Thread) *terrain.Output { return terrain.Fine(t, s, 96, 64) }},
		{"fine(96 sectors) on Tera MTA(2)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 2}) },
			func(t *machine.Thread) *terrain.Output { return terrain.Fine(t, s, 96, 64) }},
	}

	var reference *terrain.Output
	for _, r := range runs {
		var out *terrain.Output
		e := r.build()
		res, err := e.Run(r.label, func(t *machine.Thread) { out = r.solve(t) })
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			reference = out
		} else if !out.Masking.Equal(reference.Masking) {
			log.Fatalf("%s: masking differs from sequential reference", r.label)
		}
		fmt.Printf("%-32s %8.3f s simulated   %7d masked cells   %.1f MB temp arrays\n",
			r.label, res.Seconds, out.Masking.FiniteCells(), float64(out.TempBytes)/(1<<20))
	}

	fmt.Println("\nwhy the coarse version cannot run on the MTA at full scale:")
	for _, workers := range []int{16, 128, 256} {
		need := float64(terrain.CoarseTempBytesFullScale(workers)) / (1 << 30)
		fmt.Printf("  %3d workers need %5.1f GB of private temp arrays (machine has 2 GB)\n",
			workers, need)
	}
}
