// Fine-grained synchronization demo: the Tera MTA's full/empty bits make
// word-level producer/consumer synchronization and atomic appends nearly
// free, while a conventional SMP emulates the same semantics with locks and
// condition variables at hundreds to thousands of cycles per operation.
//
// The program builds a four-stage pipeline connected by single-word
// full/empty cells (each stage writes-when-empty / reads-when-full) and an
// atomic fetch-and-add histogram, then runs both on the MTA model and the
// Exemplar model. Same source, ~100x cost difference per synchronization —
// the paper's "major strength of the Tera MTA".
//
//	go run ./examples/finegrained
package main

import (
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

const items = 2000

// pipeline runs a 4-stage pipeline over `items` tokens through full/empty
// cells, then checks the result.
func pipeline(t *machine.Thread) {
	cells := []*machine.SyncVar{
		t.NewSyncVar("s0->s1"),
		t.NewSyncVar("s1->s2"),
		t.NewSyncVar("s2->s3"),
	}
	counts := t.NewCounter("histogram", 0)

	var stages []*machine.Thread
	// Producer.
	stages = append(stages, t.Go("stage0", func(c *machine.Thread) {
		for i := 0; i < items; i++ {
			c.Compute(20)
			cells[0].WriteEF(c, int64(i))
		}
	}))
	// Two relay stages.
	for s := 0; s < 2; s++ {
		s := s
		stages = append(stages, t.Go(fmt.Sprintf("stage%d", s+1), func(c *machine.Thread) {
			for i := 0; i < items; i++ {
				v := cells[s].ReadFE(c) //c3ivet:ignore fullempty relay consumes cells[s] and produces cells[s+1]; tokens move downstream, not back
				c.Compute(35)
				cells[s+1].WriteEF(c, v+1)
			}
		}))
	}
	// Consumer with atomic histogram update.
	stages = append(stages, t.Go("stage3", func(c *machine.Thread) {
		for i := 0; i < items; i++ {
			v := cells[2].ReadFE(c) //c3ivet:ignore fullempty pipeline consumer drains the final cell; each token is produced exactly once upstream
			_ = v
			counts.Next(c)
		}
	}))
	t.JoinAll(stages)
	if counts.Value() != items {
		log.Fatalf("histogram = %d, want %d", counts.Value(), items)
	}
}

func main() {
	fmt.Printf("4-stage pipeline over %d tokens through full/empty cells:\n\n", items)
	type row struct {
		name    string
		seconds float64
		stats   machine.Stats
	}
	var rows []row
	for _, build := range []func() *machine.Engine{
		func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
		func() *machine.Engine { return smp.New(smp.Exemplar(4)) },
	} {
		e := build()
		res, err := e.Run("pipeline", pipeline)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{e.Config().Name, res.Seconds, res.Stats})
	}
	for _, r := range rows {
		perOp := r.seconds / float64(r.stats.SyncOps+r.stats.AtomicOps)
		fmt.Printf("%-22s %10.3f ms simulated  %6d sync ops  ≈%6.0f ns/sync-op\n",
			r.name, r.seconds*1e3, r.stats.SyncOps+r.stats.AtomicOps, perOp*1e9)
	}
	fmt.Printf("\nratio: the conventional machine pays %.0fx more per synchronization.\n",
		rows[1].seconds/rows[0].seconds)
	fmt.Println("(the paper: thread synchronization costs \"hundreds to thousands of")
	fmt.Println("cycles\" on conventional multiprocessors vs ~1 cycle on the MTA)")
}
