// Timeline: attach the execution tracer to the same chunked Threat Analysis
// program on the Tera MTA model and on the Exemplar model, and render both
// Gantt charts. The shapes are the paper's story in one picture: the MTA
// admits every chunk as a hardware stream at once (a solid block of short
// overlapping bars), while the conventional machine staggers OS thread
// creation and runs a few long bars per processor.
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"

	"repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
	"repro/internal/trace"
)

func main() {
	s := threat.GenScenario("demo", threat.GenParams{NumThreats: 48, NumWeapons: 10, Seed: 3})

	run := func(name string, build func() *machine.Engine, chunks int) {
		e := build()
		l := trace.New(e.Config().ClockHz)
		e.SetTracer(l)
		res, err := e.Run("main", func(t *machine.Thread) {
			t.Mark("start")
			threat.Chunked(t, s, chunks)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s — %d chunks, %.2f simulated seconds ===\n", name, chunks, res.Seconds)
		fmt.Print(l.Gantt(64, 18))
		fmt.Printf("%s\n\n", l.Summarize())
	}

	run("Tera MTA (1 proc)", func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) }, 48)
	run("Exemplar (4 proc)", func() *machine.Engine { return smp.New(smp.Exemplar(4)) }, 4)
}
