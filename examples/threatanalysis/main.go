// Threat Analysis end to end: generate a benchmark scenario, solve it with
// all three program variants on two platforms, verify the outputs agree,
// and print the simulated times — a miniature of the paper's Tables 2–7.
//
//	go run ./examples/threatanalysis
package main

import (
	"fmt"
	"log"

	"repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

func main() {
	s := threat.GenScenario("demo", threat.GenParams{
		NumThreats: 120, NumWeapons: 25, Seed: 7,
	})
	fmt.Printf("scenario: %d threats × %d weapons, %d total simulation steps\n\n",
		len(s.Threats), len(s.Weapons), s.TotalSteps())

	runs := []struct {
		label string
		build func() *machine.Engine
		solve func(t *machine.Thread) *threat.Output
	}{
		{"sequential on Exemplar(16)",
			func() *machine.Engine { return smp.New(smp.Exemplar(16)) },
			func(t *machine.Thread) *threat.Output { return threat.Sequential(t, s) }},
		{"chunked(16) on Exemplar(16)",
			func() *machine.Engine { return smp.New(smp.Exemplar(16)) },
			func(t *machine.Thread) *threat.Output { return threat.Chunked(t, s, 16) }},
		{"sequential on Tera MTA(1)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(t *machine.Thread) *threat.Output { return threat.Sequential(t, s) }},
		{"chunked(256) on Tera MTA(1)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(t *machine.Thread) *threat.Output { return threat.Chunked(t, s, 256) }},
		{"fine-grained on Tera MTA(1)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(t *machine.Thread) *threat.Output { return threat.FineGrained(t, s) }},
	}

	var reference *threat.Output
	for _, r := range runs {
		var out *threat.Output
		e := r.build()
		res, err := e.Run(r.label, func(t *machine.Thread) { out = r.solve(t) })
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			reference = out
		} else if err := threat.Verify(out.Intervals, reference.Intervals); err != nil {
			log.Fatalf("%s: output mismatch: %v", r.label, err)
		}
		fmt.Printf("%-30s %8.2f s simulated   %6d intervals   %5.1f MB interval arrays\n",
			r.label, res.Seconds, len(out.Intervals), float64(out.ArrayBytes)/(1<<20))
	}
	fmt.Println("\nall variants produced the same interval set (the fine-grained")
	fmt.Println("variant in a different order — the paper's nondeterminism note).")
}
