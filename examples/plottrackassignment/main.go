// Plot-Track Assignment end to end: radar frames correlated against a track
// database under a gating window, and the three program styles — the
// sequential Gauss-Seidel auction, the coarse Jacobi auction with a
// persistent crew, private bid buffers and per-track merge locks, and the
// Tera fine-grained asynchronous auction with fetch-and-add plot claims and
// full/empty track-ownership cells — with assignment-cost verification
// across every variant and machine, and the private bid memory the coarse
// style pays for.
//
//	go run ./examples/plottrackassignment
package main

import (
	"fmt"
	"log"

	"repro/internal/c3i/data"
	"repro/internal/c3i/plottrack"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

func main() {
	p := plottrack.GenParams{Field: 512, NumTracks: 120, NumPlots: 130, Frames: 4, Seed: 41}
	s := plottrack.GenScenario("demo", p)
	fmt.Printf("field: %d×%d, %d tracks, %d frames × %d plots, gate radius %d\n\n",
		s.Field, s.Field, len(s.Tracks), len(s.Frames), len(s.Frames[0]), plottrack.DefaultGate)

	runs := []struct {
		label string
		build func() *machine.Engine
		solve func(t *machine.Thread) *plottrack.Output
	}{
		{"sequential on Alpha",
			func() *machine.Engine { return smp.New(smp.AlphaStation()) },
			func(t *machine.Thread) *plottrack.Output { return plottrack.Sequential(t, s) }},
		{"coarse(4 workers) on PPro(4)",
			func() *machine.Engine { return smp.New(smp.PentiumProSMP(4)) },
			func(t *machine.Thread) *plottrack.Output { return plottrack.Coarse(t, s, 4) }},
		{"coarse(16 workers) on Exemplar",
			func() *machine.Engine { return smp.New(smp.Exemplar(16)) },
			func(t *machine.Thread) *plottrack.Output { return plottrack.Coarse(t, s, 16) }},
		{"fine(128 threads) on Tera MTA(1)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(t *machine.Thread) *plottrack.Output { return plottrack.Fine(t, s, 128) }},
		{"fine(128 threads) on Tera MTA(2)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 2}) },
			func(t *machine.Thread) *plottrack.Output { return plottrack.Fine(t, s, 128) }},
	}

	var golden uint64
	for _, r := range runs {
		var out *plottrack.Output
		e := r.build()
		res, err := e.Run(r.label, func(t *machine.Thread) { out = r.solve(t) })
		if err != nil {
			log.Fatal(err)
		}
		sum := data.AssignmentChecksum(out.FrameCost, len(s.Frames[0]), len(s.Tracks))
		if golden == 0 {
			golden = sum
		} else if sum != golden {
			log.Fatalf("%s: assignment-cost checksum %016x differs from sequential %016x", r.label, sum, golden)
		}
		fmt.Printf("%-33s %8.3f s simulated   %6d bids   %4d matched  %3d new tracks   %.2f MB bid buffers\n",
			r.label, res.Seconds, out.Bids, out.Assigned, out.NewTracks,
			float64(out.BidBufferBytes)/(1<<20))
	}
	fmt.Printf("\nall variants agree: assignment-cost checksum %016x\n", golden)

	fmt.Println("\nwhy the coarse crew cannot use the MTA's streams at full scale:")
	for _, workers := range []int{16, 128, 256} {
		need := float64(plottrack.CoarseBidBytesFullScale(workers)) / (1 << 30)
		fmt.Printf("  %3d workers need %5.1f GB of private bid buffers (machine has 2 GB)\n",
			workers, need)
	}
}
