// Route Optimization end to end: a risk-weighted grid derived from fractal
// terrain and ground threats, and the three program styles — sequential
// Dijkstra, coarse ∆-stepping with a persistent worker crew and per-block
// merge locks, and the Tera fine-grained shared-bucket version — with
// path-cost verification across every variant and machine, and the private
// frontier memory the coarse style pays for.
//
//	go run ./examples/routeoptimization
package main

import (
	"fmt"
	"log"

	"repro/internal/c3i/data"
	"repro/internal/c3i/route"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

func main() {
	p := route.GenParams{Side: 160, NumThreats: 12, Radius: 20, NumQueries: 4, Seed: 41}
	s := route.GenScenario("demo", p)
	fmt.Printf("grid: %d×%d cells, %d ground threats, %d route requests, max edge weight %d\n\n",
		s.W, s.H, p.NumThreats, len(s.Queries), s.MaxEdgeWeight())

	runs := []struct {
		label string
		build func() *machine.Engine
		solve func(t *machine.Thread) *route.Output
	}{
		{"sequential on Alpha",
			func() *machine.Engine { return smp.New(smp.AlphaStation()) },
			func(t *machine.Thread) *route.Output { return route.Sequential(t, s) }},
		{"coarse(4 workers) on PPro(4)",
			func() *machine.Engine { return smp.New(smp.PentiumProSMP(4)) },
			func(t *machine.Thread) *route.Output { return route.Coarse(t, s, 4, 4) }},
		{"coarse(16 workers) on Exemplar",
			func() *machine.Engine { return smp.New(smp.Exemplar(16)) },
			func(t *machine.Thread) *route.Output { return route.Coarse(t, s, 16, 4) }},
		{"fine(256 threads) on Tera MTA(1)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func(t *machine.Thread) *route.Output { return route.Fine(t, s, 256) }},
		{"fine(256 threads) on Tera MTA(2)",
			func() *machine.Engine { return mta.New(mta.Params{Procs: 2}) },
			func(t *machine.Thread) *route.Output { return route.Fine(t, s, 256) }},
	}

	var golden uint64
	for _, r := range runs {
		var out *route.Output
		e := r.build()
		res, err := e.Run(r.label, func(t *machine.Thread) { out = r.solve(t) })
		if err != nil {
			log.Fatal(err)
		}
		sum := data.PathCostChecksum(out.PathCost)
		if golden == 0 {
			golden = sum
		} else if sum != golden {
			log.Fatalf("%s: path-cost checksum %016x differs from sequential %016x", r.label, sum, golden)
		}
		fmt.Printf("%-33s %8.3f s simulated   %9d relaxations   %.1f MB frontier buffers\n",
			r.label, res.Seconds, out.Relaxed, float64(out.FrontierBytes)/(1<<20))
	}
	fmt.Printf("\nall variants agree: path-cost checksum %016x\n", golden)

	fmt.Println("\nwhy the coarse crew cannot use the MTA's streams at full scale:")
	for _, workers := range []int{16, 128, 256} {
		need := float64(route.CoarseFrontierBytesFullScale(workers)) / (1 << 30)
		fmt.Printf("  %3d workers need %5.1f GB of private candidate buffers (machine has 2 GB)\n",
			workers, need)
	}
}
