// Quickstart: build a simulated machine, run a small multithreaded program
// on it, and read the simulated clock.
//
// The same program runs on the Tera MTA model and on a conventional SMP
// model; the only difference is what the machine charges for threads,
// synchronization and memory — which is the whole point of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
	"repro/internal/threads"
)

// program sums 1..n in parallel chunks and returns the simulated result.
func program(n, chunks int) func(t *machine.Thread) {
	return func(t *machine.Thread) {
		total := threads.Reduce(t, "sum", n, chunks, 0,
			func(c *machine.Thread, lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i + 1)
				}
				c.Compute(int64(3 * (hi - lo))) // load, add, loop per element
				return s
			},
			func(a, b int64) int64 { return a + b })
		fmt.Printf("    sum(1..%d) = %d\n", n, total)
	}
}

func main() {
	const n = 1_000_000
	for _, chunks := range []int{1, 16, 128} {
		fmt.Printf("with %d threads:\n", chunks)
		for _, build := range []func() *machine.Engine{
			func() *machine.Engine { return mta.New(mta.Params{Procs: 1}) },
			func() *machine.Engine { return smp.New(smp.Exemplar(16)) },
		} {
			e := build()
			res, err := e.Run("main", program(n, chunks))
			if err != nil {
				panic(err)
			}
			fmt.Printf("    %-22s %10.3f ms simulated (%.0f%% proc 0 utilization)\n",
				e.Config().Name, res.Seconds*1e3, res.Stats.ProcUtil[0]*100)
		}
	}
	fmt.Println("\nNote the MTA's dependence on thread count: with one thread it")
	fmt.Println("issues an instruction every 21 cycles; with 128 it is saturated.")
}
