// Command c3iserve serves the run API over HTTP/JSON: POST a batch of
// run.Spec values to /v1/run and get positional run.Records back, or to
// /v1/run/stream to get NDJSON events as each Record completes, executed
// through one shared, cache-deduplicated run.Runner with per-workload worker
// pools (shard affinity: the goroutines running a workload's Specs are the
// ones whose memoized scenario suites are already warm). Each pool's queue is
// bounded (-queue); a full queue answers 429 with Retry-After instead of
// blocking the listener. With -store, every computed Record also persists to
// a disk store keyed by its canonical Spec key, so identical Specs are
// answered without recomputation across requests, processes and restarts —
// and several c3iserve processes sharing one -store directory become
// replicas, fronted by c3irouter.
//
// Usage:
//
//	c3iserve -addr :8642 -store ./c3iserve-store     # serve, with persistence
//	c3iserve -addr :8642                             # serve, in-memory caches only
//	c3iserve -addr :8642 -pprof                      # also mount /debug/pprof/
//	c3iserve -client -addr http://host:8642 < batch.json
//	                                                 # POST a Spec batch from stdin,
//	                                                 # print the positional
//	                                                 # records/errors response
//
// GET /metrics serves every run_*/serve_* series in Prometheus text format
// (per-workload execution latency histograms, cache/store counters,
// per-endpoint request counts/latency/in-flight, pool worker and queue-depth
// gauges); GET /healthz carries the same snapshot as JSON plus the
// per-workload pool shape. With -pprof, net/http/pprof is mounted under
// /debug/pprof/ — `go tool pprof http://host:8642/debug/pprof/profile`
// profiles the live serving process.
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close immediately,
// in-flight batches drain for up to -drain, then the worker pools stop.
// Client mode exits non-zero if any spec in the batch failed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "repro/internal/c3i/hypothesis" // register the Hypothesis Testing workload
	_ "repro/internal/c3i/plottrack"  // register the Plot-Track Assignment workload
	_ "repro/internal/c3i/route"      // register the Route Optimization workload
	_ "repro/internal/c3i/terrain"    // register the Terrain Masking workload
	_ "repro/internal/c3i/threat"     // register the Threat Analysis workload
	"repro/internal/run"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8642", "listen address (server mode) or base URL (client mode)")
		store   = flag.String("store", "", "record store directory; empty = in-memory caches only")
		jobs    = flag.Int("jobs", 0, "runner fan-out bound; < 1 means GOMAXPROCS")
		workers = flag.Int("workers", 0, "workers per workload pool; < 1 means GOMAXPROCS")
		queue   = flag.Int("queue", 0, "queued specs per workload pool before 429; < 1 means 4x workers")
		drain   = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout for in-flight batches")
		client  = flag.Bool("client", false, "client mode: POST a Spec batch (JSON array) from stdin to -addr")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slow    = flag.Duration("slowdown", 0, "inject an artificial delay into every run request (fault injection for latency-gate validation)")
	)
	flag.Parse()

	if *client {
		os.Exit(runClient(*addr))
	}
	if err := runServer(*addr, *store, *jobs, *workers, *queue, *drain, *pprofOn, *slow); err != nil {
		fmt.Fprintf(os.Stderr, "c3iserve: %v\n", err)
		os.Exit(1)
	}
}

// runServer blocks until the listener fails or a shutdown signal drains it.
func runServer(addr, storeDir string, jobs, workers, queue int, drain time.Duration, pprofOn bool, slow time.Duration) error {
	runner := run.NewRunner(jobs)
	var ds *run.DiskStore
	if storeDir != "" {
		var err error
		ds, err = run.NewDiskStore(storeDir)
		if err != nil {
			return err
		}
		runner.SetStore(ds)
		fmt.Fprintf(os.Stderr, "c3iserve: record store %s (%d records)\n", ds.Dir(), ds.Len())
	} else {
		fmt.Fprintln(os.Stderr, "c3iserve: no -store; records are cached in-memory only")
	}
	if slow > 0 {
		fmt.Fprintf(os.Stderr, "c3iserve: FAULT INJECTION: every run request is delayed by %s\n", slow)
	}
	srv := serve.New(runner, serve.Options{
		WorkersPerWorkload: workers, QueueDepth: queue, Store: ds, Pprof: pprofOn, Slowdown: slow,
	})
	hs := &http.Server{Addr: addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		endpoints := fmt.Sprintf("POST %s, POST %s, GET %s, GET %s", serve.RunPath, serve.StreamPath, serve.HealthPath, serve.MetricsPath)
		if pprofOn {
			endpoints += ", GET " + serve.PprofPrefix
		}
		fmt.Fprintf(os.Stderr, "c3iserve: listening on %s (%s)\n", addr, endpoints)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "c3iserve: shutting down, draining in-flight batches (up to %s)\n", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(sctx)
	srv.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3iserve: drain timeout exceeded; some batches were cut off")
	} else {
		fmt.Fprintln(os.Stderr, "c3iserve: drained")
	}
	return nil
}

// runClient POSTs the stdin batch and prints the server's positional
// response verbatim ({"records": […], "errors": […]}) — a failed spec stays
// a null record plus its error string, never a fabricated zero-value record.
// Per-spec failures also go to stderr; the exit status is 1 if any spec
// failed, 2 for unusable input.
func runClient(addr string) int {
	var specs []run.Spec
	if err := json.NewDecoder(os.Stdin).Decode(&specs); err != nil {
		fmt.Fprintf(os.Stderr, "c3iserve: stdin must be a JSON array of run Specs: %v\n", err)
		return 2
	}
	c := &serve.Client{Addr: addr}
	br, err := c.RunBatch(context.Background(), specs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3iserve: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(br); encErr != nil {
		fmt.Fprintf(os.Stderr, "c3iserve: encoding response: %v\n", encErr)
		return 1
	}
	failed := 0
	for i, e := range br.Errors {
		if e != "" {
			fmt.Fprintf(os.Stderr, "c3iserve: spec %d: %s\n", i, e)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
