// Command autopar prints the dependence analyzer's compiler-feedback reports
// for the paper's Programs 1–4 and the textbook control loops — the
// reproduction of the paper's automatic-parallelization experiments.
//
//	autopar            # all programs
//	autopar -program 1 # just Program 1
//	autopar -strict    # exit non-zero if any analyzed loop stays Sequential
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autopar"
)

func main() {
	program := flag.Int("program", 0, "program number 1-4 (0 = all, plus controls)")
	show := flag.Bool("show", false, "print each program's pseudocode listing before its analysis")
	strict := flag.Bool("strict", false, "exit non-zero if any analyzed loop is left Sequential (CI gate)")
	flag.Parse()

	type entry struct {
		n int
		p *autopar.Program
	}
	entries := []entry{
		{1, autopar.Program1ThreatSequential()},
		{2, autopar.Program2ThreatChunked(false)},
		{2, autopar.Program2ThreatChunked(true)},
		{3, autopar.Program3TerrainSequential()},
		{4, autopar.Program4TerrainCoarse(false)},
		{4, autopar.Program4TerrainCoarse(true)},
	}
	matched := false
	sequential := false
	for _, e := range entries {
		if *program != 0 && e.n != *program {
			continue
		}
		matched = true
		if *show {
			fmt.Print(autopar.PrintProgram(e.p))
			fmt.Println()
		}
		reports := autopar.AnalyzeProgram(e.p)
		fmt.Print(autopar.Render(e.p.Name, reports))
		if autopar.AnySequential(reports) {
			sequential = true
		}
		if autopar.AnyPractical(reports) {
			fmt.Println("  => practical opportunities found")
		} else {
			fmt.Println("  => no practical opportunities for parallelization")
		}
		fmt.Println()
	}
	if *program == 0 {
		fmt.Println("--- analyzer controls (textbook loops) ---")
		for _, p := range []*autopar.Program{
			autopar.VectorAdd(), autopar.SumReduction(),
			autopar.StridedDisjoint(), autopar.Stencil1D(),
		} {
			reports := autopar.AnalyzeProgram(p)
			fmt.Print(autopar.Render(p.Name, reports))
			if autopar.AnySequential(reports) {
				sequential = true
			}
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "autopar: no program %d\n", *program)
		os.Exit(1)
	}
	if *strict && sequential {
		fmt.Fprintln(os.Stderr, "autopar: sequential loops remain (-strict)")
		os.Exit(2)
	}
}
