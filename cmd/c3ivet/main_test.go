package main

import (
	"strings"
	"testing"

	"repro/internal/analysis/determinism"
)

// TestAnalyzerSet pins the registered suite: CI's lint gate is only as strong
// as this list.
func TestAnalyzerSet(t *testing.T) {
	want := []string{"determinism", "fullempty", "metriclint", "registrylint"}
	suite := analyzers()
	if len(suite) != len(want) {
		t.Fatalf("analyzer count = %d, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

func TestListFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errb.String())
	}
	for _, a := range analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, out.String())
		}
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag exit = %d, want 2", code)
	}
}

// TestScopeFlagWiring proves the -determinism.scope flag reaches the
// analyzer: the violating fixture is findings-free when the scope excludes
// it and fails the gate when the scope matches it.
func TestScopeFlagWiring(t *testing.T) {
	scope := determinism.Analyzer.Flags[0].Value
	old := *scope
	t.Cleanup(func() { *scope = old })

	fixture := "./../../internal/analysis/determinism/testdata/src/determ"

	var out, errb strings.Builder
	if code := run([]string{"-determinism.scope=no/such/path", fixture}, &out, &errb); code != 0 {
		t.Fatalf("excluded scope exit = %d, want 0; out:\n%s", code, out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-determinism.scope=testdata/src/", fixture}, &out, &errb); code != 1 {
		t.Fatalf("matching scope exit = %d, want 1; out:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "time.Now") {
		t.Errorf("expected a time.Now finding, got:\n%s", out.String())
	}
}
