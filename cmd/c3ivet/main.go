// Command c3ivet is the repo's multichecker: it runs the internal/analysis
// suite — determinism, fullempty, metriclint, registrylint — over the given
// packages and exits non-zero on any finding, so CI can gate the invariants
// every artifact contract depends on.
//
//	c3ivet ./...          # whole module (the CI lint job)
//	c3ivet -list          # print the analyzer set
//	c3ivet -v ./...       # also count suppressed findings
//
// Findings are silenced per line with `//c3ivet:ignore <analyzer> <reason>`
// on the flagged line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/fullempty"
	"repro/internal/analysis/metriclint"
	"repro/internal/analysis/registrylint"
)

// analyzers is the registered suite, in reporting order.
func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		fullempty.Analyzer,
		metriclint.Analyzer,
		registrylint.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	suite := analyzers()

	fs := flag.NewFlagSet("c3ivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzer set and exit")
	verbose := fs.Bool("v", false, "report suppressed-finding counts")
	for _, a := range suite {
		for _, f := range a.Flags {
			fs.StringVar(f.Value, a.Name+"."+f.Name, *f.Value, f.Usage)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := analysis.Run(analysis.Config{Patterns: patterns, Analyzers: suite})
	if err != nil {
		fmt.Fprintf(stderr, "c3ivet: %v\n", err)
		return 2
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintln(stdout, d)
	}
	if *verbose && len(res.Suppressed) > 0 {
		fmt.Fprintf(stdout, "c3ivet: %d finding(s) suppressed by %s directives\n",
			len(res.Suppressed), analysis.IgnoreDirective)
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "c3ivet: %d finding(s)\n", len(res.Diagnostics))
		return 1
	}
	return 0
}
