// Command c3idata manages C3IPBS benchmark data: it generates the five-input
// scenario files for each problem (with golden output checksums — the
// suite's "correctness test for the benchmark output data") and re-validates
// solver outputs against them. For Route Optimization, -check runs all three
// program variants and verifies each against the golden checksum, since they
// must converge to identical path costs.
//
//	c3idata -gen -dir ./data -scale-ta 0.1 -scale-tm 0.1 -scale-ro 0.25
//	c3idata -check -dir ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/c3i/data"
	"repro/internal/c3i/route"
	"repro/internal/c3i/terrain"
	"repro/internal/c3i/threat"
	"repro/internal/machine"
	"repro/internal/mta"
	"repro/internal/smp"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate scenario files and golden checksums")
		check   = flag.Bool("check", false, "solve stored scenarios and verify against goldens")
		dir     = flag.String("dir", "c3ipbs-data", "data directory")
		scaleTA = flag.Float64("scale-ta", 0.1, "Threat Analysis scale (1 = paper size)")
		scaleTM = flag.Float64("scale-tm", 0.1, "Terrain Masking scale (1 = paper size)")
		scaleRO = flag.Float64("scale-ro", 0.25, "Route Optimization scale (1 = full suite size)")
	)
	flag.Parse()
	switch {
	case *gen:
		if err := generate(*dir, *scaleTA, *scaleTM, *scaleRO); err != nil {
			log.Fatal(err)
		}
	case *check:
		if err := validate(*dir); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "c3idata: use -gen or -check")
		os.Exit(2)
	}
}

// solveThreat runs the sequential reference solver (on the Alpha model; the
// output is machine-independent).
func solveThreat(s *threat.Scenario) ([]threat.Interval, error) {
	var out *threat.Output
	e := smp.New(smp.AlphaStation())
	_, err := e.Run("ref", func(th *machine.Thread) { out = threat.Sequential(th, s) })
	if err != nil {
		return nil, err
	}
	return out.Intervals, nil
}

func solveTerrain(s *terrain.Scenario) (*terrain.Masking, error) {
	var out *terrain.Output
	e := smp.New(smp.AlphaStation())
	_, err := e.Run("ref", func(th *machine.Thread) { out = terrain.Sequential(th, s) })
	if err != nil {
		return nil, err
	}
	return out.Masking, nil
}

// solveRoute runs one Route Optimization variant and returns the path costs.
func solveRoute(s *route.Scenario, variant string) ([]int64, error) {
	var out *route.Output
	var e *machine.Engine
	var run func(th *machine.Thread)
	switch variant {
	case "sequential":
		e = smp.New(smp.AlphaStation())
		run = func(th *machine.Thread) { out = route.Sequential(th, s) }
	case "coarse":
		e = smp.New(smp.PentiumProSMP(4))
		run = func(th *machine.Thread) { out = route.Coarse(th, s, 4, 4) }
	case "fine":
		e = mta.New(mta.Params{Procs: 1})
		run = func(th *machine.Thread) { out = route.Fine(th, s, 64) }
	default:
		return nil, fmt.Errorf("c3idata: unknown route variant %q", variant)
	}
	if _, err := e.Run("ref", run); err != nil {
		return nil, err
	}
	return out.PathCost, nil
}

func generate(dir string, scaleTA, scaleTM, scaleRO float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var goldens []data.Golden

	for i, s := range threat.Suite(scaleTA) {
		path := filepath.Join(dir, fmt.Sprintf("threat-%d.c3i", i+1))
		if err := data.SaveThreatScenario(path, s); err != nil {
			return err
		}
		ivs, err := solveThreat(s)
		if err != nil {
			return err
		}
		sum := data.IntervalsChecksum(ivs)
		goldens = append(goldens, data.Golden{Scenario: s.Name, Kind: "threat-analysis", Checksum: sum})
		fmt.Printf("wrote %-22s %5d threats %6d intervals  checksum %016x\n",
			path, len(s.Threats), len(ivs), sum)
	}
	for i, s := range terrain.Suite(scaleTM) {
		path := filepath.Join(dir, fmt.Sprintf("terrain-%d.c3i", i+1))
		if err := data.SaveTerrainScenario(path, s); err != nil {
			return err
		}
		m, err := solveTerrain(s)
		if err != nil {
			return err
		}
		sum := data.MaskingChecksum(m)
		goldens = append(goldens, data.Golden{Scenario: s.Name, Kind: "terrain-masking", Checksum: sum})
		fmt.Printf("wrote %-22s %5d sites   %6d masked   checksum %016x\n",
			path, len(s.Threats), m.FiniteCells(), sum)
	}
	for i, s := range route.Suite(scaleRO) {
		path := filepath.Join(dir, fmt.Sprintf("route-%d.c3i", i+1))
		if err := data.SaveRouteScenario(path, s); err != nil {
			return err
		}
		costs, err := solveRoute(s, "sequential")
		if err != nil {
			return err
		}
		sum := data.PathCostChecksum(costs)
		goldens = append(goldens, data.Golden{Scenario: s.Name, Kind: "route-optimization", Checksum: sum})
		fmt.Printf("wrote %-22s %5d cells   %6d routes   checksum %016x\n",
			path, s.Cells(), len(s.Queries), sum)
	}
	gpath := filepath.Join(dir, "golden.c3i")
	if err := data.SaveGolden(gpath, goldens); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d records)\n", gpath, len(goldens))
	return nil
}

func validate(dir string) error {
	goldens, err := data.LoadGolden(filepath.Join(dir, "golden.c3i"))
	if err != nil {
		return err
	}
	failures := 0
	for i := 1; ; i++ {
		path := filepath.Join(dir, fmt.Sprintf("threat-%d.c3i", i))
		if _, err := os.Stat(path); err != nil {
			break
		}
		s, err := data.LoadThreatScenario(path)
		if err != nil {
			return err
		}
		ivs, err := solveThreat(s)
		if err != nil {
			return err
		}
		if err := data.CheckGolden(goldens, s.Name, "threat-analysis", data.IntervalsChecksum(ivs)); err != nil {
			fmt.Printf("FAIL %s: %v\n", path, err)
			failures++
		} else {
			fmt.Printf("ok   %s\n", path)
		}
	}
	for i := 1; ; i++ {
		path := filepath.Join(dir, fmt.Sprintf("terrain-%d.c3i", i))
		if _, err := os.Stat(path); err != nil {
			break
		}
		s, err := data.LoadTerrainScenario(path)
		if err != nil {
			return err
		}
		m, err := solveTerrain(s)
		if err != nil {
			return err
		}
		if err := data.CheckGolden(goldens, s.Name, "terrain-masking", data.MaskingChecksum(m)); err != nil {
			fmt.Printf("FAIL %s: %v\n", path, err)
			failures++
		} else {
			fmt.Printf("ok   %s\n", path)
		}
	}
	for i := 1; ; i++ {
		path := filepath.Join(dir, fmt.Sprintf("route-%d.c3i", i))
		if _, err := os.Stat(path); err != nil {
			break
		}
		s, err := data.LoadRouteScenario(path)
		if err != nil {
			return err
		}
		// All three variants must reproduce the golden path costs.
		for _, variant := range []string{"sequential", "coarse", "fine"} {
			costs, err := solveRoute(s, variant)
			if err != nil {
				return err
			}
			if err := data.CheckGolden(goldens, s.Name, "route-optimization", data.PathCostChecksum(costs)); err != nil {
				fmt.Printf("FAIL %s (%s): %v\n", path, variant, err)
				failures++
			} else {
				fmt.Printf("ok   %s (%s)\n", path, variant)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("c3idata: %d correctness failures", failures)
	}
	fmt.Println("all outputs match their goldens")
	return nil
}
