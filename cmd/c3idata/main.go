// Command c3idata manages C3IPBS benchmark data: it generates the five-input
// scenario files for each registered workload (with golden output checksums
// — the suite's "correctness test for the benchmark output data") and
// re-validates solver outputs against them. Workloads, scale flags, file
// names, reference solvers and the set of variants re-checked at -check all
// come from the internal/c3i/suite registry, so a newly registered workload
// joins the data tools by adding one serialization codec to internal/c3i/data.
//
// Route Optimization and Plot-Track Assignment register all three program
// variants for -check, since they must converge to identical outputs; the
// other workloads re-check their sequential reference.
//
// -scale-small overrides every per-workload scale with its registered
// SmallScale — the registry-derived smoke preset CI uses, so newly
// registered workloads are covered without pipeline edits.
//
//	c3idata -gen -dir ./data -scale-ta 0.1 -scale-tm 0.1 -scale-ro 0.25
//	c3idata -gen -dir ./data -scale-small
//	c3idata -check -dir ./data
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/c3i/data"
	"repro/internal/c3i/suite"
	"repro/internal/run"
)

func main() {
	var (
		gen   = flag.Bool("gen", false, "generate scenario files and golden checksums")
		check = flag.Bool("check", false, "solve stored scenarios and verify against goldens")
		dir   = flag.String("dir", "c3ipbs-data", "data directory")
		small = flag.Bool("scale-small", false,
			"use every workload's registered smoke-test scale (overrides the per-workload -scale-* flags)")
	)
	scales := map[string]*float64{}
	for _, w := range suite.All() {
		scales[w.Name] = flag.Float64("scale-"+w.Key, w.DataScale,
			fmt.Sprintf("%s scale (1 = %d %s)", w.Title, w.PaperUnits, w.UnitName))
	}
	flag.Parse()
	if *small {
		for _, w := range suite.All() {
			*scales[w.Name] = w.SmallScale
		}
	}
	switch {
	case *gen:
		if err := generate(*dir, scales); err != nil {
			log.Fatal(err)
		}
	case *check:
		if err := validate(*dir); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "c3idata: use -gen or -check")
		os.Exit(2)
	}
}

// runner executes every validation run; RunScenario keeps engine
// construction inside the internal/run API while solving the exact
// scenarios loaded from (or about to be written to) disk.
var runner = run.NewRunner(0)

// solve runs one registered variant over a scenario on the reference machine
// (the Alpha model; outputs are machine-independent) in validate mode and
// returns the checksummed output.
func solve(w *suite.Workload, v *suite.Variant, sc suite.Scenario) (suite.Output, error) {
	rec, err := runner.RunScenario(context.Background(), run.Spec{
		Workload: w.Name, Variant: v.Name, Platform: "alpha", Procs: 1, Validate: true,
	}, sc)
	if err != nil {
		return suite.Output{}, err
	}
	return suite.Output{Checksum: uint64(rec.Checksum), OverheadBytes: rec.OverheadBytes}, nil
}

// scenarioPath names a workload's i-th scenario file (1-based).
func scenarioPath(dir string, w *suite.Workload, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%d.c3i", w.FileTag, i))
}

func generate(dir string, scales map[string]*float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var goldens []data.Golden
	for _, w := range suite.All() {
		codec, err := data.CodecFor(w.Name)
		if err != nil {
			return err
		}
		ref := w.MustVariant(w.Reference)
		for i, sc := range w.Generate(*scales[w.Name]) {
			path := scenarioPath(dir, w, i+1)
			if err := codec.Save(path, sc); err != nil {
				return err
			}
			out, err := solve(w, ref, sc)
			if err != nil {
				return err
			}
			goldens = append(goldens, data.Golden{
				Scenario: sc.ScenarioName(), Kind: w.Name, Checksum: out.Checksum,
			})
			fmt.Printf("wrote %-22s %5d %-24s checksum %016x\n",
				path, sc.Units(), w.UnitName, out.Checksum)
		}
	}
	gpath := filepath.Join(dir, "golden.c3i")
	if err := data.SaveGolden(gpath, goldens); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d records)\n", gpath, len(goldens))
	return nil
}

func validate(dir string) error {
	goldens, err := data.LoadGolden(filepath.Join(dir, "golden.c3i"))
	if err != nil {
		return err
	}
	failures := 0
	for _, w := range suite.All() {
		codec, err := data.CodecFor(w.Name)
		if err != nil {
			return err
		}
		for i := 1; ; i++ {
			path := scenarioPath(dir, w, i)
			if _, err := os.Stat(path); err != nil {
				break
			}
			sc, err := codec.Load(path)
			if err != nil {
				return err
			}
			// Every registered validate variant must reproduce the golden.
			for _, name := range w.ValidateVariants {
				out, err := solve(w, w.MustVariant(name), sc)
				if err != nil {
					return err
				}
				if err := data.CheckGolden(goldens, sc.ScenarioName(), w.Name, out.Checksum); err != nil {
					fmt.Printf("FAIL %s (%s): %v\n", path, name, err)
					failures++
				} else {
					fmt.Printf("ok   %s (%s)\n", path, name)
				}
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("c3idata: %d correctness failures", failures)
	}
	fmt.Println("all outputs match their goldens")
	return nil
}
