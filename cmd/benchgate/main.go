// Command benchgate is the performance-regression CI gate: it converts
// measurements into a committed JSON artifact and compares two artifacts
// with per-family ratio thresholds. The families are table-driven (see
// internal/benchgate): "benchmarks" (host ns/op from `go test -bench`
// output, generous default gate — shared runners are noisy), "model_s"
// (simulated seconds from `c3ibench -json` records, tight gate — the model
// is deterministic for a given tree) and "serve_latency" (client-side
// p50/p95/p99 per endpoint from a `c3iload` artifact).
//
//	go test -bench . -benchtime 1x -run '^$' . | benchgate -parse -out BENCH_pr.json
//	benchgate -parse -in bench.txt -src model_s=records.json -out BENCH_pr.json
//	benchgate -parse -src serve_latency=load.json -out BENCH_serve_pr.json
//	benchgate -baseline BENCH_baseline.json -current BENCH_pr.json \
//	    -family benchmarks=2 -family model_s=1.5
//
// -family name=ratio overrides one family's gate (repeatable; unset families
// use the table defaults). -src name=path feeds one family's source to
// -parse (repeatable); bare `-parse` with no -src reads `go test -bench`
// output from stdin, preserving the original pipe idiom. The pre-table
// flags -in, -records, -max-ratio and -max-model-ratio remain as deprecated
// aliases.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchgate"
)

// kvFlag collects repeatable name=value flags into an ordered key set.
type kvFlag struct {
	name   string // flag name, for error messages
	keys   []string
	values map[string]string
}

func (f *kvFlag) String() string {
	var parts []string
	for _, k := range f.keys {
		parts = append(parts, k+"="+f.values[k])
	}
	return strings.Join(parts, ",")
}

func (f *kvFlag) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" || value == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if _, err := benchgate.FamilyByName(name); err != nil {
		return err
	}
	if f.values == nil {
		f.values = map[string]string{}
	}
	if _, dup := f.values[name]; dup {
		return fmt.Errorf("-%s %s given twice", f.name, name)
	}
	f.keys = append(f.keys, name)
	f.values[name] = value
	return nil
}

// set records a value arriving through a deprecated alias flag, deferring to
// an explicit -family/-src for the same family.
func (f *kvFlag) set(name, value string) {
	if _, ok := f.values[name]; ok {
		return
	}
	if f.values == nil {
		f.values = map[string]string{}
	}
	f.keys = append(f.keys, name)
	f.values[name] = value
}

func main() {
	var (
		parse    = flag.Bool("parse", false, "build a JSON artifact from the -src inputs (no -src: benchmarks from stdin)")
		out      = flag.String("out", "BENCH_pr.json", "artifact path to write with -parse")
		baseline = flag.String("baseline", "", "baseline artifact to compare against")
		current  = flag.String("current", "", "current artifact to compare")

		srcs       = kvFlag{name: "src"}
		thresholds = kvFlag{name: "family"}

		// Deprecated aliases from the two-family era.
		in            = flag.String("in", "", "deprecated alias for -src benchmarks=PATH (- = stdin)")
		records       = flag.String("records", "", "deprecated alias for -src model_s=PATH")
		maxRatio      = flag.Float64("max-ratio", 0, "deprecated alias for -family benchmarks=RATIO")
		maxModelRatio = flag.Float64("max-model-ratio", 0, "deprecated alias for -family model_s=RATIO")
	)
	flag.Var(&srcs, "src", "family=path source for -parse (repeatable); see internal/benchgate for the declared families")
	flag.Var(&thresholds, "family", "family=ratio gate override for comparison (repeatable; unset families use table defaults)")
	flag.Parse()

	if *in != "" {
		srcs.set(benchgate.FamilyBenchmarks, *in)
	}
	if *records != "" {
		srcs.set(benchgate.FamilyModelS, *records)
	}
	if *maxRatio != 0 {
		thresholds.set(benchgate.FamilyBenchmarks, strconv.FormatFloat(*maxRatio, 'g', -1, 64))
	}
	if *maxModelRatio != 0 {
		thresholds.set(benchgate.FamilyModelS, strconv.FormatFloat(*maxModelRatio, 'g', -1, 64))
	}

	if len(srcs.keys) > 0 && !*parse {
		// Sources feed artifact *construction*; in compare mode every family
		// comes from the artifacts themselves. Silently ignoring them would
		// skip a gate the caller asked for.
		fmt.Fprintln(os.Stderr, "benchgate: -src/-in/-records are only meaningful with -parse (compare mode reads families from the artifacts)")
		os.Exit(2)
	}

	switch {
	case *parse:
		if len(srcs.keys) == 0 {
			// The original pipe idiom: `go test -bench . | benchgate -parse`.
			srcs.set(benchgate.FamilyBenchmarks, "-")
		}
		rep := &benchgate.Report{}
		for _, name := range srcs.keys {
			fam, err := benchgate.FamilyByName(name)
			if err != nil {
				log.Fatal(err)
			}
			src := os.Stdin
			if path := srcs.values[name]; path != "-" {
				f, err := os.Open(path)
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				src = f
			}
			entries, err := fam.Extract(src)
			if err != nil {
				log.Fatal(err)
			}
			if err := rep.Set(name, entries); err != nil {
				log.Fatal(err)
			}
		}
		if err := rep.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%s)\n", *out, rep.Summary())
	case *baseline != "" && *current != "":
		base, err := benchgate.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cur, err := benchgate.ReadFile(*current)
		if err != nil {
			log.Fatal(err)
		}
		overrides := map[string]float64{}
		for name, raw := range thresholds.values {
			ratio, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				log.Fatalf("benchgate: -family %s=%s: %v", name, raw, err)
			}
			overrides[name] = ratio
		}
		cmp, err := benchgate.Compare(base, cur, overrides)
		if err != nil {
			log.Fatal(err)
		}
		if !cmp.Render(os.Stdout) {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchgate: use -parse [-src family=path ...] -out X.json, or -baseline X.json -current Y.json [-family name=ratio ...]")
		os.Exit(2)
	}
}
