// Command benchgate is the benchmark-regression CI gate: it converts
// `go test -bench` output into a committed JSON artifact (benchmark name →
// ns/op) and compares two artifacts with a generous ratio threshold, so
// only large slowdowns fail a PR while runner noise and registry growth
// pass through.
//
//	go test -bench . -benchtime 1x -run '^$' . | benchgate -parse -out BENCH_pr.json
//	benchgate -baseline BENCH_baseline.json -current BENCH_pr.json -max-ratio 2
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/benchgate"
)

func main() {
	var (
		parse    = flag.Bool("parse", false, "read `go test -bench` output and write a JSON artifact")
		in       = flag.String("in", "-", "bench output to parse (- = stdin)")
		out      = flag.String("out", "BENCH_pr.json", "artifact path to write with -parse")
		baseline = flag.String("baseline", "", "baseline artifact to compare against")
		current  = flag.String("current", "", "current artifact to compare")
		maxRatio = flag.Float64("max-ratio", 2.0, "fail when current/baseline ns/op exceeds this")
	)
	flag.Parse()

	switch {
	case *parse:
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		rep, err := benchgate.Parse(r)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	case *baseline != "" && *current != "":
		base, err := benchgate.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cur, err := benchgate.ReadFile(*current)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := benchgate.Compare(base, cur, *maxRatio)
		if err != nil {
			log.Fatal(err)
		}
		if !cmp.Render(os.Stdout) {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchgate: use -parse [-in bench.txt] -out X.json, or -baseline X.json -current Y.json")
		os.Exit(2)
	}
}
