// Command benchgate is the benchmark-regression CI gate: it converts
// benchmark measurements into a committed JSON artifact and compares two
// artifacts with per-family ratio thresholds. The "benchmarks" family
// (ns/op from `go test -bench` output) gets a generous gate — shared
// runners are noisy and the baseline may come from different hardware —
// while the "model_s" family (simulated seconds from `c3ibench -json` run
// records) is deterministic for a given tree, so it gates model-shape
// regressions with a tight threshold even when host time is flat.
//
//	go test -bench . -benchtime 1x -run '^$' . | benchgate -parse -out BENCH_pr.json
//	c3ibench -run table2,table5 -json > records.json
//	benchgate -parse -in bench.txt -records records.json -out BENCH_pr.json
//	benchgate -baseline BENCH_baseline.json -current BENCH_pr.json -max-ratio 2 -max-model-ratio 1.5
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/benchgate"
)

func main() {
	var (
		parse         = flag.Bool("parse", false, "read `go test -bench` output and write a JSON artifact")
		in            = flag.String("in", "-", "bench output to parse (- = stdin)")
		records       = flag.String("records", "", "c3ibench -json records file; adds the model_s family to the artifact")
		out           = flag.String("out", "BENCH_pr.json", "artifact path to write with -parse")
		baseline      = flag.String("baseline", "", "baseline artifact to compare against")
		current       = flag.String("current", "", "current artifact to compare")
		maxRatio      = flag.Float64("max-ratio", 2.0, "fail when current/baseline ns/op exceeds this")
		maxModelRatio = flag.Float64("max-model-ratio", 1.5, "fail when current/baseline model_s exceeds this")
	)
	flag.Parse()

	if *records != "" && !*parse {
		// -records feeds artifact *construction*; in compare mode both
		// families come from the artifacts themselves. Silently ignoring it
		// would skip the model_s gate the caller asked for.
		fmt.Fprintln(os.Stderr, "benchgate: -records is only meaningful with -parse (compare mode reads model_s from the artifacts)")
		os.Exit(2)
	}

	switch {
	case *parse:
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		rep, err := benchgate.Parse(r)
		if err != nil {
			log.Fatal(err)
		}
		if *records != "" {
			f, err := os.Open(*records)
			if err != nil {
				log.Fatal(err)
			}
			rep.ModelS, err = benchgate.ParseRecords(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		}
		if err := rep.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks, %d model_s entries)\n",
			*out, len(rep.Benchmarks), len(rep.ModelS))
	case *baseline != "" && *current != "":
		base, err := benchgate.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cur, err := benchgate.ReadFile(*current)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := benchgate.Compare(base, cur, *maxRatio, *maxModelRatio)
		if err != nil {
			log.Fatal(err)
		}
		if !cmp.Render(os.Stdout) {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchgate: use -parse [-in bench.txt] [-records records.json] -out X.json, or -baseline X.json -current Y.json")
		os.Exit(2)
	}
}
