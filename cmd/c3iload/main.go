// Command c3iload load-tests a c3iserve or c3irouter endpoint: it replays a
// registry-enumerated Spec mix over both the batch (POST /v1/run) and NDJSON
// stream (POST /v1/run/stream) transports at a target request rate with
// open-loop pacing, and writes a CI-ready JSON artifact — achieved RPS,
// delivered Record throughput, client-side p50/p95/p99 latency per endpoint,
// error/429/drop counts, and a stepped-RPS saturation curve.
//
// The traffic is a pure function of the flags: one seeded RNG draws the
// endpoint split, batch sizes, workload mix and the cold/warm/cached Spec
// temperature (cached = exact repeat the server answers from its record
// cache; warm = fresh key in a touched workload×scale, memoized scenarios
// but real execution; cold = fresh workload×scale, scenario generation
// included). Same seed, same schedule — artifacts are comparable across
// commits, which is what the benchgate serve_latency family gates on.
//
//	c3iserve -addr :8642 &
//	c3iload -addr http://localhost:8642 -rps 200 -duration 10s -out load.json
//	c3iload -addr http://localhost:8642 -steps 50,100,200,400 -duration 5s \
//	    -mix cold=0.05,warm=0.2,cached=0.75 -stream-ratio 0.5 -seed 42 -out curve.json
//	benchgate -parse -src serve_latency=load.json -out BENCH_serve_pr.json
//
// Exit status: 0 with the artifact written, 1 when the target is unhealthy
// or the run fails, 2 for unusable flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "repro/internal/c3i/hypothesis" // register the Hypothesis Testing workload
	_ "repro/internal/c3i/plottrack"  // register the Plot-Track Assignment workload
	_ "repro/internal/c3i/route"      // register the Route Optimization workload
	_ "repro/internal/c3i/terrain"    // register the Terrain Masking workload
	_ "repro/internal/c3i/threat"     // register the Threat Analysis workload
	"repro/internal/load"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8642", "target base URL (a c3iserve or c3irouter)")
		rps         = flag.Float64("rps", 100, "target request rate for a single-step run")
		steps       = flag.String("steps", "", "comma-separated RPS sweep (overrides -rps), e.g. 50,100,200,400")
		duration    = flag.Duration("duration", 10*time.Second, "measured window per step")
		warmup      = flag.Duration("warmup", 1*time.Second, "unrecorded lead-in per step, paced at the step's rate")
		mix         = flag.String("mix", "cold=0.05,warm=0.20,cached=0.75", "cold/warm/cached Spec temperature weights")
		batch       = flag.String("batch", "1=6,4=3,8=1", "weighted batch-size distribution (size=weight,...)")
		workloads   = flag.String("workloads", "", "weighted workload mix (name=weight,...); empty = all registered, equal weight")
		streamRatio = flag.Float64("stream-ratio", 0.5, "fraction of requests sent to the NDJSON stream endpoint")
		scale       = flag.Float64("scale", 0.02, "base Spec scale (cold Specs derive fresh scales from it)")
		platform    = flag.String("platform", "tera", "machine model Specs request")
		procs       = flag.Int("procs", 1, "modeled processor count Specs request")
		validate    = flag.Bool("validate", false, "request checksummed outputs instead of charge-only runs")
		seed        = flag.Int64("seed", 1, "RNG seed; the whole schedule is a pure function of the flags and this")
		maxInflight = flag.Int("max-inflight", 256, "outstanding-request bound; over-limit launches are counted as dropped")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout; 0 = none")
		out         = flag.String("out", "-", "artifact path (- = stdout)")
		quiet       = flag.Bool("quiet", false, "suppress per-step progress lines on stderr")
	)
	flag.Parse()

	cfg := load.Config{
		Addr:         *addr,
		Steps:        []float64{*rps},
		StepDuration: *duration,
		Warmup:       *warmup,
		StreamRatio:  *streamRatio,
		Scale:        *scale,
		Platform:     *platform,
		Procs:        *procs,
		Validate:     *validate,
		Seed:         *seed,
		MaxInflight:  *maxInflight,
		Timeout:      *timeout,
	}
	fail2 := func(err error) {
		fmt.Fprintf(os.Stderr, "c3iload: %v\n", err)
		os.Exit(2)
	}
	var err error
	if *steps != "" {
		if cfg.Steps, err = load.ParseSteps(*steps); err != nil {
			fail2(err)
		}
	}
	if cfg.Mix, err = load.ParseMix(*mix); err != nil {
		fail2(err)
	}
	if cfg.BatchSizes, err = load.ParseIntDist(*batch); err != nil {
		fail2(err)
	}
	if *workloads != "" {
		if cfg.Workloads, err = load.ParseNameDist(*workloads); err != nil {
			fail2(err)
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "c3iload: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	h, err := load.New(cfg, logf)
	if err != nil {
		fail2(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := h.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3iload: %v\n", err)
		os.Exit(1)
	}
	if err := res.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "c3iload: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" && !*quiet {
		fmt.Fprintf(os.Stderr, "c3iload: wrote %s (%d steps, %d endpoints)\n", *out, len(res.Curve), len(res.Endpoints))
	}
}
