package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"

	_ "repro/internal/experiments" // register the shipped workloads
	"repro/internal/run"
	"repro/internal/serve"
)

func TestWriteRecordSetEnvelope(t *testing.T) {
	// A partial-failure sweep must name its failures in the envelope — the
	// CI run-records step gates on `.failed == []`, so an incomplete
	// artifact can no longer masquerade as a complete one.
	recorded := []run.ExperimentRecords{{
		Experiment: "table5",
		Title:      "Multithreaded Threat Analysis on dual-processor Tera MTA",
		ElapsedS:   1.25,
		Records:    []run.Record{{Key: "threat-analysis|coarse|tera|p2|s0.25|chunks=256,pipelined=0"}},
	}}
	failed := []run.ExperimentFailure{{Experiment: "table9", Error: "engine exploded"}}

	var sb strings.Builder
	if err := writeRecordSet(&sb, recorded, failed); err != nil {
		t.Fatal(err)
	}
	var set run.RecordSet
	if err := json.Unmarshal([]byte(sb.String()), &set); err != nil {
		t.Fatal(err)
	}
	if len(set.Experiments) != 1 || set.Experiments[0].Experiment != "table5" {
		t.Errorf("experiments = %+v", set.Experiments)
	}
	if len(set.Failed) != 1 || set.Failed[0].Experiment != "table9" ||
		!strings.Contains(set.Failed[0].Error, "exploded") {
		t.Errorf("failure manifest = %+v, want table9/engine exploded", set.Failed)
	}
}

func TestParseGridFlag(t *testing.T) {
	name, restrict, err := parseGridFlag("hypothesis-testing")
	if err != nil || name != "hypothesis-testing" || restrict != nil {
		t.Errorf("bare form: name=%q restrict=%v err=%v", name, restrict, err)
	}
	name, restrict, err = parseGridFlag("hypothesis-testing=gate:24,48;net: 0")
	if err != nil || name != "hypothesis-testing" {
		t.Fatalf("restricted form: name=%q err=%v", name, err)
	}
	want := map[string][]float64{"gate": {24, 48}, "net": {0}}
	if !reflect.DeepEqual(restrict, want) {
		t.Errorf("restrict = %v, want %v", restrict, want)
	}
	for flagVal, wantSub := range map[string]string{
		"=gate:24":              "need",         // empty workload name
		"ht=gate":               "axis",         // restriction without values
		"ht=gate:24;gate:48":    "twice",        // duplicate axis
		"ht=gate:24,twentyfive": "not a number", // unparseable value
	} {
		if _, _, err := parseGridFlag(flagVal); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("parseGridFlag(%q) err = %v, want mention of %q", flagVal, err, wantSub)
		}
	}
}

func TestGridSweepJSONEnvelope(t *testing.T) {
	// A restricted sweep must land one validated record per grid point in a
	// benchgate-parseable envelope with an empty failure manifest, and the
	// host wall clock zeroed so the artifact is deterministic.
	var sb strings.Builder
	err := gridSweep(&sb, "hypothesis-testing=scale:0.05;gate:24,48;prune:0;net:0,1",
		"", "tera", 2, run.NewRunner(1), true, false)
	if err != nil {
		t.Fatal(err)
	}
	var set run.RecordSet
	if err := json.Unmarshal([]byte(sb.String()), &set); err != nil {
		t.Fatal(err)
	}
	if len(set.Failed) != 0 {
		t.Errorf("failed = %+v, want empty", set.Failed)
	}
	if len(set.Experiments) != 1 || set.Experiments[0].Experiment != "grid:hypothesis-testing" {
		t.Fatalf("experiments = %+v", set.Experiments)
	}
	recs := set.Experiments[0].Records
	if len(recs) != 4 {
		t.Fatalf("got %d records, want one per grid point (4)", len(recs))
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		if rec.HostElapsed != 0 {
			t.Errorf("%s: host_elapsed_ns = %d, want 0 (deterministic envelope)", rec.Key, rec.HostElapsed)
		}
		if rec.Checksum == 0 {
			t.Errorf("%s: zero checksum — grid points must validate", rec.Key)
		}
		if seen[rec.Key] {
			t.Errorf("duplicate record key %q", rec.Key)
		}
		seen[rec.Key] = true
	}
}

func TestGridSweepTableHasAxisColumns(t *testing.T) {
	var sb strings.Builder
	err := gridSweep(&sb, "hypothesis-testing=scale:0.05;gate:24;prune:0;net:0",
		"", "tera", 2, run.NewRunner(1), false, false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, col := range []string{"scale", "gate", "prune", "net", "Checksum"} {
		if !strings.Contains(out, col) {
			t.Errorf("table output missing column %q:\n%s", col, out)
		}
	}
}

// admissionExecutor rejects any batch larger than cap with 429 — the shape
// of a c3iserve pool queue smaller than a whole-grid batch.
type admissionExecutor struct {
	cap     int
	batches []int
}

func (a *admissionExecutor) RunAll(_ context.Context, specs []run.Spec) ([]run.Record, error) {
	if len(specs) > a.cap {
		return nil, &serve.StatusError{Code: http.StatusTooManyRequests,
			Status: "429 Too Many Requests", Msg: "pool queue is full"}
	}
	a.batches = append(a.batches, len(specs))
	recs := make([]run.Record, len(specs))
	for i, sp := range specs {
		recs[i] = run.Record{Key: sp.Key()}
	}
	return recs, nil
}

func TestRunAdmittedShrinksBatchesUntilAdmitted(t *testing.T) {
	// 81 specs against a server that admits at most 6 at a time: the sweep
	// must halve 81→41→21→11→6 and then deliver every record, in order.
	specs := make([]run.Spec, 81)
	for i := range specs {
		specs[i] = run.Spec{Workload: "w", Variant: "v", Platform: "alpha",
			Procs: 1, Scale: float64(i+1) / 100}
	}
	ex := &admissionExecutor{cap: 6}
	recs, err := runAdmitted(ex, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(specs) {
		t.Fatalf("got %d records, want %d", len(recs), len(specs))
	}
	for i, rec := range recs {
		if rec.Key != specs[i].Key() {
			t.Fatalf("record %d out of order: %q", i, rec.Key)
		}
	}
	for _, n := range ex.batches {
		if n > ex.cap {
			t.Errorf("batch of %d exceeded the admitted size %d", n, ex.cap)
		}
	}

	// A 429 at chunk size 1 is a real failure, not an admission loop.
	_, err = runAdmitted(&admissionExecutor{cap: 0}, specs[:2])
	var se *serve.StatusError
	if !errors.As(err, &se) {
		t.Errorf("cap 0: err = %v, want the 429 surfaced", err)
	}
}

type failingExecutor struct{}

func (failingExecutor) RunAll(context.Context, []run.Spec) ([]run.Record, error) {
	return nil, errors.New("fleet unreachable")
}

func TestGridSweepExecutionFailureEmitsFailedManifest(t *testing.T) {
	// When the executor dies mid-sweep the JSON contract still holds: an
	// envelope with an explicit failure entry, and an error main maps to
	// exit 1 (execution) rather than exit 2 (usage).
	var sb strings.Builder
	err := gridSweep(&sb, "hypothesis-testing=scale:0.05;gate:24;prune:0;net:0",
		"", "tera", 2, failingExecutor{}, true, false)
	var se *sweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a *sweepError", err)
	}
	var set run.RecordSet
	if err := json.Unmarshal([]byte(sb.String()), &set); err != nil {
		t.Fatal(err)
	}
	if len(set.Experiments) != 0 {
		t.Errorf("experiments = %+v, want empty", set.Experiments)
	}
	if len(set.Failed) != 1 || !strings.Contains(set.Failed[0].Error, "fleet unreachable") {
		t.Errorf("failure manifest = %+v", set.Failed)
	}

	// Usage-shaped failures (an undeclared value) are not sweepErrors.
	err = gridSweep(&sb, "hypothesis-testing=gate:17", "", "tera", 2, run.NewRunner(1), true, false)
	if err == nil || errors.As(err, &se) {
		t.Errorf("undeclared grid value: err = %v, want a plain (usage) error", err)
	}
}

func TestWriteRecordSetEmptySweepStaysGateable(t *testing.T) {
	// An all-failed (or empty) sweep still emits explicit arrays: `.failed`
	// and `.experiments` must be [] / populated, never null, so jq checks
	// do not need null guards.
	var sb strings.Builder
	if err := writeRecordSet(&sb, nil, nil); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(sb.String())
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(got), &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"experiments", "failed"} {
		v, ok := raw[field]
		if !ok {
			t.Errorf("envelope %s missing field %q", got, field)
			continue
		}
		if string(v) != "[]" {
			t.Errorf("field %q = %s, want []", field, v)
		}
	}
}
