package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/run"
)

func TestWriteRecordSetEnvelope(t *testing.T) {
	// A partial-failure sweep must name its failures in the envelope — the
	// CI run-records step gates on `.failed == []`, so an incomplete
	// artifact can no longer masquerade as a complete one.
	recorded := []run.ExperimentRecords{{
		Experiment: "table5",
		Title:      "Multithreaded Threat Analysis on dual-processor Tera MTA",
		ElapsedS:   1.25,
		Records:    []run.Record{{Key: "threat-analysis|coarse|tera|p2|s0.25|chunks=256,pipelined=0"}},
	}}
	failed := []run.ExperimentFailure{{Experiment: "table9", Error: "engine exploded"}}

	var sb strings.Builder
	if err := writeRecordSet(&sb, recorded, failed); err != nil {
		t.Fatal(err)
	}
	var set run.RecordSet
	if err := json.Unmarshal([]byte(sb.String()), &set); err != nil {
		t.Fatal(err)
	}
	if len(set.Experiments) != 1 || set.Experiments[0].Experiment != "table5" {
		t.Errorf("experiments = %+v", set.Experiments)
	}
	if len(set.Failed) != 1 || set.Failed[0].Experiment != "table9" ||
		!strings.Contains(set.Failed[0].Error, "exploded") {
		t.Errorf("failure manifest = %+v, want table9/engine exploded", set.Failed)
	}
}

func TestWriteRecordSetEmptySweepStaysGateable(t *testing.T) {
	// An all-failed (or empty) sweep still emits explicit arrays: `.failed`
	// and `.experiments` must be [] / populated, never null, so jq checks
	// do not need null guards.
	var sb strings.Builder
	if err := writeRecordSet(&sb, nil, nil); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(sb.String())
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(got), &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"experiments", "failed"} {
		v, ok := raw[field]
		if !ok {
			t.Errorf("envelope %s missing field %q", got, field)
			continue
		}
		if string(v) != "[]" {
			t.Errorf("field %q = %s, want []", field, v)
		}
	}
}
