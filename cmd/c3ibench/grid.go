package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/c3i/suite"
	"repro/internal/report"
	"repro/internal/run"
	"repro/internal/serve"
)

// batchExecutor is the sweep surface a grid run needs: the local Runner and
// the remote serve.Client both provide it, so `-grid` runs through a server
// fleet with `-remote` unchanged.
type batchExecutor interface {
	RunAll(ctx context.Context, specs []run.Spec) ([]run.Record, error)
}

// parseGridFlag splits the -grid value: "workload" sweeps the full declared
// grid; "workload=axis:v1,v2[;axis:v1,...]" restricts named axes to subsets
// of their declared values.
func parseGridFlag(s string) (name string, restrict map[string][]float64, err error) {
	name, spec, has := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf(`-grid %q: need "workload" or "workload=axis:v1,v2[;axis:...]"`, s)
	}
	if !has {
		return name, nil, nil
	}
	restrict = map[string][]float64{}
	for _, part := range strings.Split(spec, ";") {
		axis, list, ok := strings.Cut(part, ":")
		axis = strings.TrimSpace(axis)
		if !ok || axis == "" {
			return "", nil, fmt.Errorf(`-grid %q: restriction %q: need "axis:v1,v2"`, s, part)
		}
		if _, dup := restrict[axis]; dup {
			return "", nil, fmt.Errorf("-grid %q: axis %q restricted twice", s, axis)
		}
		var vals []float64
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return "", nil, fmt.Errorf("-grid %q: axis %q: value %q is not a number", s, axis, f)
			}
			vals = append(vals, v)
		}
		restrict[axis] = vals
	}
	return name, restrict, nil
}

// runAdmitted executes the sweep's specs in order, shrinking the sub-batch
// size whenever a server's admission control rejects one. A full grid is one
// big single-workload batch — larger than a small c3iserve's bounded pool
// queue — so a whole-batch POST can be rejected no matter how often it is
// retried; halving until the batch fits (down to one Spec per request, the
// granularity every server admits) lets the same sweep run against any fleet
// configuration. Locally the executor never rejects and this is a single
// RunAll call.
func runAdmitted(exec batchExecutor, specs []run.Spec) ([]run.Record, error) {
	ctx := context.Background()
	recs := make([]run.Record, 0, len(specs))
	chunk := len(specs)
	for lo := 0; lo < len(specs); {
		hi := lo + chunk
		if hi > len(specs) {
			hi = len(specs)
		}
		sub, err := exec.RunAll(ctx, specs[lo:hi])
		if err != nil {
			var se *serve.StatusError
			if errors.As(err, &se) && se.Code == http.StatusTooManyRequests && chunk > 1 {
				chunk = (chunk + 1) / 2
				continue
			}
			return nil, err
		}
		recs = append(recs, sub...)
		lo = hi
	}
	return recs, nil
}

// sweepError marks a grid failure that happened during execution (as opposed
// to a usage error in the flag value or grid restriction): main reports it
// with exit 1, the same contract as a failed experiment.
type sweepError struct{ err error }

func (e *sweepError) Error() string { return e.err.Error() }
func (e *sweepError) Unwrap() error { return e.err }

// gridSweep executes one grid sweep and renders it. The emitted JSON
// envelope is deterministic — host-elapsed fields are zeroed — so a sweep
// through `-remote` is byte-identical to the same sweep in-process.
func gridSweep(w io.Writer, gridFlag, variant, platform string, procs int,
	exec batchExecutor, jsonOut, md bool) error {

	name, restrict, err := parseGridFlag(gridFlag)
	if err != nil {
		return err
	}
	pts, err := run.GridSpecs(name, variant, platform, procs, restrict)
	if err != nil {
		return err
	}
	wl, err := suite.Lookup(name)
	if err != nil {
		return err
	}
	if variant == "" {
		variant = wl.Reference
	}
	id := "grid:" + name
	title := fmt.Sprintf("%s scenario grid (%s on %s, %d procs, %d points)",
		wl.Title, variant, platform, procs, len(pts))

	specs := make([]run.Spec, len(pts))
	for i, gp := range pts {
		specs[i] = gp.Spec
	}
	recs, runErr := runAdmitted(exec, specs)
	if runErr != nil {
		if jsonOut {
			// The envelope contract holds on failure too: an explicit failed
			// manifest, so a consumer gating on `.failed == []` rejects a
			// partial sweep instead of a truncated record list passing.
			if err := writeRecordSet(w, nil, []run.ExperimentFailure{
				{Experiment: id, Error: runErr.Error()}}); err != nil {
				return err
			}
		}
		return &sweepError{fmt.Errorf("grid %s: %w", name, runErr)}
	}
	for i := range recs {
		recs[i].HostElapsed = 0
	}

	if jsonOut {
		return writeRecordSet(w, []run.ExperimentRecords{
			{Experiment: id, Title: title, Records: recs}}, nil)
	}

	axes := wl.Grid
	if len(restrict) > 0 {
		if axes, err = wl.Grid.Sub(restrict); err != nil {
			return err
		}
	}
	cols := []string{}
	for _, a := range axes.Axes {
		cols = append(cols, a.Name)
	}
	cols = append(cols, "Model (s)", "Paper-scale (s)", "Checksum")
	tb := &report.Table{
		ID:      id,
		Title:   title,
		Columns: cols,
		Notes: []string{
			"row-major over the declared axes; every point validates, so every row carries the conformance checksum",
		},
	}
	for i, rec := range recs {
		row := []any{}
		for _, a := range axes.Axes {
			row = append(row, fmt.Sprintf("%g", pts[i].Point[a.Name]))
		}
		row = append(row, rec.ModelSeconds, rec.PaperSeconds,
			fmt.Sprintf("%016x", uint64(rec.Checksum)))
		tb.AddRow(row...)
	}
	if md {
		fmt.Fprintln(w, tb.Markdown())
	} else {
		fmt.Fprintln(w, tb.Render())
	}
	return nil
}
