// Command c3ibench regenerates the paper's tables and figures (and the
// reproduction's ablations and suite extensions) from the machine models and
// benchmark programs.
//
// Usage:
//
//	c3ibench -list                 # list experiment IDs
//	c3ibench -run table5           # one experiment
//	c3ibench -run table5,table6    # several
//	c3ibench -all                  # everything, in paper order
//	c3ibench -all -md              # markdown output (for EXPERIMENTS.md)
//	c3ibench -scale-ta 0.5 ...     # bigger Threat Analysis workload
//	c3ibench -scale-ro 1 ...       # full Route Optimization workload
//
// The exit status is non-zero if any requested experiment ID is unknown or
// any experiment fails; the remaining experiments still run, so one broken
// table does not hide the rest of an -all sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		run     = flag.String("run", "", "comma-separated experiment IDs to run")
		all     = flag.Bool("all", false, "run every experiment in paper order")
		md      = flag.Bool("md", false, "emit Markdown instead of ASCII tables")
		text    = flag.Bool("text", true, "include free-text output (compiler feedback)")
		scaleTA = flag.Float64("scale-ta", experiments.DefaultConfig().ScaleTA,
			"Threat Analysis workload scale (1 = the paper's 1000 threats/scenario)")
		scaleTM = flag.Float64("scale-tm", experiments.DefaultConfig().ScaleTM,
			"Terrain Masking workload scale (1 = the paper's 60 threats/scenario)")
		scaleRO = flag.Float64("scale-ro", experiments.DefaultConfig().ScaleRO,
			"Route Optimization workload scale (1 = the suite's 12 route requests/scenario)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-24s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "c3ibench: nothing to do; use -list, -run <ids> or -all")
		os.Exit(2)
	}

	cfg := experiments.Config{ScaleTA: *scaleTA, ScaleTM: *scaleTM, ScaleRO: *scaleRO}
	failures := 0
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3ibench:", err)
			failures++
			continue
		}
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3ibench: %s: %v\n", e.ID, err)
			failures++
			continue
		}
		for _, tb := range res.Tables {
			if *md {
				fmt.Println(tb.Markdown())
			} else {
				fmt.Println(tb.Render())
			}
		}
		for _, fig := range res.Figures {
			fmt.Println(fig.Render(56, 16))
		}
		if *text && res.Text != "" {
			fmt.Println(res.Text)
		}
		fmt.Fprintf(os.Stderr, "[%s in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "c3ibench: %d of %d requested experiments failed\n", failures, len(ids))
		os.Exit(1)
	}
}
