// Command c3ibench regenerates the paper's tables and figures (and the
// reproduction's ablations and suite extensions) from the machine models and
// benchmark programs. Workloads, their variants and their scale flags come
// from the internal/c3i/suite registry, so a newly registered workload shows
// up here with no command changes. Every model cell is executed through the
// internal/run API; -json emits the raw run records instead of rendered
// tables, and each emitted record's Spec re-executes to the identical
// ModelSeconds and Checksum.
//
// Usage:
//
//	c3ibench -list                 # registered workloads, variants, experiment IDs
//	c3ibench -run table5           # one experiment
//	c3ibench -run table5,table6    # several
//	c3ibench -all                  # everything, in paper order
//	c3ibench -all -jobs 4          # same results, computed by 4 parallel workers
//	c3ibench -all -md              # markdown output (for EXPERIMENTS.md)
//	c3ibench -run table5 -json     # machine-readable run records (CI artifact)
//	c3ibench -scale-ta 0.5 ...     # bigger Threat Analysis workload
//	c3ibench -scale-ro 1 ...       # full Route Optimization workload
//	c3ibench -all -remote http://host:8642
//	                               # same tables, Specs executed by a c3iserve
//	                               # process (and its record store) instead of
//	                               # in-process
//	c3ibench -run ro-streams -cpuprofile cpu.out -memprofile mem.out
//	                               # profile the engine hot paths under a real
//	                               # sweep (go tool pprof cpu.out)
//	c3ibench -grid hypothesis-testing -json
//	                               # sweep a workload's declared scenario grid:
//	                               # one validated run record per grid point,
//	                               # row-major over the declared axes
//	c3ibench -grid "hypothesis-testing=gate:24,48;net:0"
//	                               # restrict axes to subsets of their declared
//	                               # values (quote the = and ; for the shell)
//	c3ibench -run table5 -stats -  # print the Runner's metrics snapshot
//	                               # (JSON: per-workload exec latency
//	                               # histograms with p50/p95/p99, cache/store
//	                               # counters) after the sweep; -stats FILE
//	                               # writes it to FILE (the CI artifact)
//
// Results always print in the requested order, whatever -jobs is. The exit
// status is non-zero if any requested experiment ID is unknown or any
// experiment fails; the remaining experiments still run, so one broken table
// does not hide the rest of an -all sweep. In -json mode the emitted envelope
// carries an explicit `failed` manifest naming those experiments, so a
// consumer gating on the artifact can tell a complete sweep from a partial
// one. Invalid flag values (a non-positive -jobs or -scale-*) are usage
// errors: exit 2, naming the flag.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/c3i/suite"
	"repro/internal/experiments"
	"repro/internal/run"
	"repro/internal/serve"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list registered workloads, variants and experiment IDs, then exit")
		runIDs  = flag.String("run", "", "comma-separated experiment IDs to run")
		all     = flag.Bool("all", false, "run every experiment in paper order")
		jobs    = flag.Int("jobs", 1, "number of parallel experiment workers (results still print in order)")
		md      = flag.Bool("md", false, "emit Markdown instead of ASCII tables")
		jsonOut = flag.Bool("json", false, "emit the raw run records as JSON instead of rendered tables/figures")
		text    = flag.Bool("text", true, "include free-text output (compiler feedback)")
		remote  = flag.String("remote", "", "execute run Specs against a c3iserve or c3irouter endpoint (base URL) instead of in-process")
		grid    = flag.String("grid", "", `sweep a workload's declared scenario grid: "workload" or "workload=axis:v1,v2[;axis:...]"`)
		gridVar = flag.String("grid-variant", "", "variant for -grid (default: the workload's reference variant)")
		gridPlt = flag.String("grid-platform", "tera", "platform key for -grid")
		gridNP  = flag.Int("grid-procs", 2, "processor count for -grid")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf = flag.String("memprofile", "", "write a post-sweep heap profile to this file")
		stats   = flag.String("stats", "", `write the Runner's metrics snapshot (JSON) after the sweep to this file ("-" = stdout)`)
	)
	// One scale flag per registered workload: -scale-ta, -scale-tm, ...
	scales := map[string]*float64{}
	for _, w := range suite.All() {
		scales[w.Name] = flag.Float64("scale-"+w.Key, w.DefaultScale,
			fmt.Sprintf("%s workload scale (1 = the paper-scale %d %s)", w.Title, w.PaperUnits, w.UnitName))
	}
	flag.Parse()

	// Reject invalid values outright instead of silently serializing or
	// falling back to registry defaults: a mistyped sweep should not emit
	// tables (or CI artifacts) at a scale the caller did not ask for.
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "c3ibench: -jobs %d: must be at least 1\n", *jobs)
		os.Exit(2)
	}
	for _, w := range suite.All() {
		if s := *scales[w.Name]; s <= 0 {
			fmt.Fprintf(os.Stderr, "c3ibench: -scale-%s %g: must be positive\n", w.Key, s)
			os.Exit(2)
		}
	}

	if *list {
		printList()
		return
	}

	if *grid != "" {
		// A grid sweep is a standalone mode: it emits one records envelope
		// (or one table) for exactly the declared points, so mixing it with
		// an experiment sweep would interleave two different documents.
		if *all || *runIDs != "" {
			fmt.Fprintln(os.Stderr, "c3ibench: -grid is standalone; drop -run/-all")
			os.Exit(2)
		}
		if *gridNP < 1 {
			fmt.Fprintf(os.Stderr, "c3ibench: -grid-procs %d: must be at least 1\n", *gridNP)
			os.Exit(2)
		}
		var exec batchExecutor = run.NewRunner(*jobs)
		if *remote != "" {
			exec = &serve.Client{Addr: *remote, Metrics: experiments.Metrics()}
		}
		if err := gridSweep(os.Stdout, *grid, *gridVar, *gridPlt, *gridNP, exec, *jsonOut, *md); err != nil {
			fmt.Fprintf(os.Stderr, "c3ibench: %v\n", err)
			var se *sweepError
			if errors.As(err, &se) {
				os.Exit(1) // the sweep itself failed
			}
			os.Exit(2) // bad flag value, unknown workload/axis, undeclared point
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *runIDs != "":
		ids = strings.Split(*runIDs, ",")
	default:
		fmt.Fprintln(os.Stderr, "c3ibench: nothing to do; use -list, -run <ids> or -all")
		os.Exit(2)
	}

	cfg := experiments.Config{Scales: map[string]float64{}}
	for name, s := range scales {
		cfg.Scales[name] = *s
	}
	if *remote != "" {
		// Client attempt/retry counters land in the same registry -stats
		// snapshots, so remote transport behaviour is visible next to the
		// run counters.
		cfg.Executor = &serve.Client{Addr: *remote, Metrics: experiments.Metrics()}
	}

	if *jsonOut && *stats == "-" {
		fmt.Fprintln(os.Stderr, "c3ibench: -json and -stats - both write stdout; give -stats a file")
		os.Exit(2)
	}
	stopCPU, err := startCPUProfile(*cpuProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3ibench: %v\n", err)
		os.Exit(2)
	}

	// Outcomes stream in request order as they (and their predecessors)
	// finish, so serial runs report incrementally and -jobs runs print
	// identically. In -json mode the records are collected and emitted as
	// one document once the sweep completes.
	failures := 0
	var recorded []run.ExperimentRecords
	var failed []run.ExperimentFailure
	experiments.RunEach(ids, cfg, *jobs, func(oc experiments.Outcome) {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "c3ibench: %s: %v\n", oc.Experiment.ID, oc.Err)
			failed = append(failed, run.ExperimentFailure{Experiment: oc.Experiment.ID, Error: oc.Err.Error()})
			failures++
			return
		}
		if *jsonOut {
			recorded = append(recorded, run.ExperimentRecords{
				Experiment: oc.Experiment.ID,
				Title:      oc.Experiment.Title,
				ElapsedS:   oc.Elapsed.Seconds(),
				Records:    oc.Result.Records,
			})
		} else {
			for _, tb := range oc.Result.Tables {
				if *md {
					fmt.Println(tb.Markdown())
				} else {
					fmt.Println(tb.Render())
				}
			}
			for _, fig := range oc.Result.Figures {
				fmt.Println(fig.Render(56, 16))
			}
			if *text && oc.Result.Text != "" {
				fmt.Println(oc.Result.Text)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s in %.1fs]\n", oc.Experiment.ID, oc.Elapsed.Seconds())
	})
	// Profiles cover exactly the sweep; the snapshot and profile files are
	// written even when some experiments failed, so a partial sweep still
	// leaves evidence of where the time went.
	stopCPU()
	toolErr := false
	if err := writeMemProfile(*memProf); err != nil {
		fmt.Fprintf(os.Stderr, "c3ibench: %v\n", err)
		toolErr = true
	}
	if err := writeStats(*stats); err != nil {
		fmt.Fprintf(os.Stderr, "c3ibench: %v\n", err)
		toolErr = true
	}
	if *jsonOut {
		// Emit whatever completed even when some experiments failed — the
		// same partial-failure contract as the rendered-table mode, with
		// the exit status still reporting the failures — but the envelope
		// names the failed experiments explicitly, so a consumer gating on
		// this artifact (the CI model_s step) can reject an incomplete
		// sweep instead of silently accepting whatever subset succeeded.
		if err := writeRecordSet(os.Stdout, recorded, failed); err != nil {
			fmt.Fprintf(os.Stderr, "c3ibench: encoding records: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "c3ibench: %d of %d requested experiments failed\n", failures, len(ids))
		os.Exit(1)
	}
	if toolErr {
		os.Exit(1)
	}
}

// startCPUProfile begins CPU profiling into path (no-op for ""), returning
// the stop function to run once the sweep is done.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("-cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("-cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile writes a post-GC heap profile to path (no-op for "") —
// live allocations after the sweep, the view the ROADMAP's allocation-cut
// work starts from.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle the sweep's garbage so the profile shows live data
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	return nil
}

// writeStats snapshots the shared Runner's metrics registry as JSON to path
// ("-" = stdout, "" = no-op). With -remote the interesting counters live in
// the server's /metrics — the local registry only shows zero executions.
func writeStats(path string) error {
	if path == "" {
		return nil
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("-stats: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.Metrics().WriteJSON(w); err != nil {
		return fmt.Errorf("-stats: %w", err)
	}
	return nil
}

// writeRecordSet emits the -json envelope: completed experiments plus the
// explicit failure manifest, with both arrays always present (empty, never
// null) so downstream jq gates can check `.failed == []` directly.
func writeRecordSet(w io.Writer, recorded []run.ExperimentRecords, failed []run.ExperimentFailure) error {
	set := run.RecordSet{Experiments: recorded, Failed: failed}
	set.Canonicalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(set)
}

// printList renders the full registered surface: every workload with its
// variants and tunable parameters, then every experiment ID in paper order.
func printList() {
	fmt.Println("Registered workloads (internal/c3i/suite):")
	for _, w := range suite.All() {
		fmt.Printf("  %-20s -scale-%-3s %s (1 = %d %s; default %g)\n",
			w.Name, w.Key, w.Title, w.PaperUnits, w.UnitName, w.DefaultScale)
		for _, v := range w.Variants {
			params := "no params"
			if len(v.Defaults) > 0 {
				params = "defaults " + v.Defaults.String()
			}
			fmt.Printf("    %-12s style=%-10s %s\n", v.Name, v.Style, params)
		}
		if w.Grid != nil && len(w.Grid.Axes) > 0 {
			fmt.Printf("    grid (%d points):\n", len(w.Grid.Points()))
			for _, a := range w.Grid.Axes {
				vals := make([]string, len(a.Values))
				for i, v := range a.Values {
					vals[i] = fmt.Sprintf("%g", v)
				}
				unit := ""
				if a.Unit != "" {
					unit = " " + a.Unit
				}
				fmt.Printf("      axis %-8s {%s}%s (default %g)\n",
					a.Name, strings.Join(vals, ", "), unit, a.Default)
			}
		}
	}
	fmt.Println()
	fmt.Println("Experiments (paper order):")
	for _, e := range experiments.All() {
		fmt.Printf("  %-24s %s\n", e.ID, e.Title)
	}
}
