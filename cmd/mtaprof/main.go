// Command mtaprof explores the Tera MTA machine model directly: how issue
// utilization and runtime scale with the number of streams, the memory
// intensity of the workload, and the machine parameters. It is the tool for
// understanding *why* the benchmark tables come out the way they do.
//
//	mtaprof                       # stream sweep with the default kernel
//	mtaprof -procs 2 -latency 280 # what a slower network would do
//	mtaprof -deps 8               # a memory-dependent kernel
//	mtaprof -cpuprofile cpu.out   # profile the simulator host hot paths
//	                              # under the sweep (go tool pprof cpu.out)
//	mtaprof -stats rows.json      # per-row engine statistics as JSON
//	                              # ("-" = stdout, after the table)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/mta"
	"repro/internal/report"
)

// statsRow is one -stats entry: the sweep point plus the engine's full
// statistics for it.
type statsRow struct {
	Streams   int           `json:"streams"`
	Seconds   float64       `json:"seconds"`
	IssueUtil float64       `json:"issue_util"`
	Stats     machine.Stats `json:"stats"`
}

func main() {
	var (
		procs    = flag.Int("procs", 1, "processors")
		opsIter  = flag.Int64("ops", 130, "compute ops per iteration per stream")
		deps     = flag.Int("deps", 2, "dependent loads per iteration per stream")
		iters    = flag.Int("iters", 50, "iterations per stream")
		latency  = flag.Float64("latency", 0, "override memory latency (cycles)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a post-sweep heap profile to this file")
		statsOut = flag.String("stats", "", `write per-row engine statistics (JSON) to this file ("-" = stdout)`)
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("mtaprof: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("mtaprof: -cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	tb := &report.Table{
		ID:      "mtaprof",
		Title:   fmt.Sprintf("MTA issue utilization vs streams (%d proc, %d ops + %d dependent loads per iteration)", *procs, *opsIter, *deps),
		Columns: []string{"Streams", "Cycles", "Issue utilization", "Throughput (ops/cycle)"},
	}
	var rows []statsRow
	for _, streams := range []int{1, 2, 4, 8, 16, 21, 32, 48, 64, 80, 96, 128} {
		p := mta.DefaultParams(*procs)
		if *latency > 0 {
			p.MemLatency = *latency
		}
		e := mta.New(p)
		res, err := e.Run("kernel", func(t *machine.Thread) {
			r := t.Alloc("data", 1<<22)
			var ts []*machine.Thread
			for i := 0; i < streams; i++ {
				off := uint64(i) * 4096
				ts = append(ts, t.Go(fmt.Sprintf("s%d", i), func(c *machine.Thread) {
					for j := 0; j < *iters; j++ {
						c.Compute(*opsIter)
						if *deps > 0 {
							c.Burst(mem.Burst{Region: r, Offset: off, Stride: 8, Elem: 8, N: *deps, Dep: true})
						}
					}
				}))
			}
			t.JoinAll(ts)
		})
		if err != nil {
			log.Fatal(err)
		}
		util := 0.0
		for _, u := range res.Stats.ProcUtil {
			util += u
		}
		util /= float64(len(res.Stats.ProcUtil))
		totalOps := float64(streams) * float64(*iters) * float64(*opsIter)
		tb.AddRow(streams,
			fmt.Sprintf("%.0f", res.Stats.Cycles),
			fmt.Sprintf("%.1f%%", util*100),
			fmt.Sprintf("%.3f", totalOps/res.Stats.Cycles))
		rows = append(rows, statsRow{Streams: streams, Seconds: res.Seconds, IssueUtil: util, Stats: res.Stats})
	}
	fmt.Println(tb.Render())
	fmt.Println("The single-stream row shows the paper's ~5% utilization; with a")
	fmt.Println("memory-dependent kernel, saturation needs far more than 21 streams.")

	if *statsOut != "" {
		w := os.Stdout
		if *statsOut != "-" {
			f, err := os.Create(*statsOut)
			if err != nil {
				log.Fatalf("mtaprof: -stats: %v", err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatalf("mtaprof: -stats: %v", err)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatalf("mtaprof: -memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("mtaprof: -memprofile: %v", err)
		}
	}
}
