// Command c3irouter is the sharded front tier over c3iserve: it serves the
// identical run API (POST /v1/run, POST /v1/run/stream, GET /healthz, GET
// /metrics) and partitions every batch's Specs across a configured set of
// c3iserve shard URLs — per-workload constraints first, rendezvous hashing
// on the canonical Spec key among a workload's replicas — with health-probed
// failover: a sub-batch whose shard dies is re-partitioned onto the live
// candidates and the batch still completes. Point the shards at one shared
// -store directory and a failover costs zero recomputation: the replica
// answers the dead shard's keys from the record store.
//
// Usage:
//
//	c3irouter -addr :8643 -shards http://h1:8642,http://h2:8642
//	c3irouter -addr :8643 -shards 'http://h1:8642=threat-analysis+terrain-masking,http://h2:8642'
//	                              # h1 only serves the two named workloads;
//	                              # h2 serves everything
//	c3ibench -all -remote http://localhost:8643
//	                              # the router is wire-identical to a single
//	                              # c3iserve — same tables, same bytes
//
// A shard entry is a base URL, optionally followed by "=" and a
// "+"-separated list of workload names constraining what it serves.
// GET /healthz reports the per-shard up/degraded/down state machine; GET
// /metrics serves router_shard_requests_total, router_shard_failovers_total
// and router_shard_up per shard in Prometheus text format.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-flight
// batches drain for up to -drain, then the health probes stop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8643", "listen address")
		shards       = flag.String("shards", "", `comma-separated shard URLs, each optionally "url=workload+workload" constrained`)
		probe        = flag.Duration("probe", 2*time.Second, "health-probe interval")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		downAfter    = flag.Int("down-after", 3, "consecutive failures before a shard is considered down")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-sub-batch request timeout; 0 = none (cold sweeps run for minutes)")
		drain        = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout for in-flight batches")
	)
	flag.Parse()

	cfgs, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3irouter: %v\n", err)
		os.Exit(2)
	}
	rt, err := router.New(router.Options{
		Shards:        cfgs,
		ProbeInterval: *probe,
		ProbeTimeout:  *probeTimeout,
		DownAfter:     *downAfter,
		ShardTimeout:  *shardTimeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3irouter: %v\n", err)
		os.Exit(2)
	}
	if err := serveRouter(rt, *addr, cfgs, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "c3irouter: %v\n", err)
		os.Exit(1)
	}
}

// parseShards decodes the -shards syntax: "url[,url...]" with an optional
// "=wl+wl" workload constraint per entry.
func parseShards(s string) ([]router.Shard, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-shards is required (comma-separated c3iserve base URLs)")
	}
	var out []router.Shard
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		url, constraint, constrained := strings.Cut(entry, "=")
		sh := router.Shard{URL: url}
		if constrained {
			for _, w := range strings.Split(constraint, "+") {
				if w = strings.TrimSpace(w); w != "" {
					sh.Workloads = append(sh.Workloads, w)
				}
			}
			if len(sh.Workloads) == 0 {
				return nil, fmt.Errorf("shard %q: empty workload constraint", entry)
			}
		}
		out = append(out, sh)
	}
	return out, nil
}

// serveRouter blocks until the listener fails or a shutdown signal drains it.
func serveRouter(rt *router.Router, addr string, cfgs []router.Shard, drain time.Duration) error {
	rt.Start()
	hs := &http.Server{Addr: addr, Handler: rt}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		for _, sh := range cfgs {
			constraint := "all workloads"
			if len(sh.Workloads) > 0 {
				constraint = strings.Join(sh.Workloads, ", ")
			}
			fmt.Fprintf(os.Stderr, "c3irouter: shard %s (%s)\n", sh.URL, constraint)
		}
		fmt.Fprintf(os.Stderr, "c3irouter: listening on %s (POST %s, POST %s, GET %s, GET %s)\n",
			addr, serve.RunPath, serve.StreamPath, serve.HealthPath, serve.MetricsPath)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		rt.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "c3irouter: shutting down, draining in-flight batches (up to %s)\n", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(sctx)
	rt.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3irouter: drain timeout exceeded; some batches were cut off")
	} else {
		fmt.Fprintln(os.Stderr, "c3irouter: drained")
	}
	return nil
}
